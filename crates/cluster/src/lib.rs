//! `hpcbd-cluster` — the modeled platform and process placement.
//!
//! The paper runs everything on SDSC Comet so that the HPC and Big Data
//! stacks are compared fairly on one machine. This crate plays that role
//! for the simulation: it owns the canonical Comet description (Table I),
//! the placement policy ("N nodes, P processes per node" as used in every
//! experiment), and small launcher helpers that the paradigm runtimes
//! (`minimpi`, `minspark`, ...) build on.

#![warn(missing_docs)]

pub mod placement;
pub mod platform;

pub use placement::{Assignment, Placement, RankMap};
pub use platform::{comet_summary, ClusterSpec};
