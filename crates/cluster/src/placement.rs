//! Process placement: mapping ranks / executors to nodes.

use hpcbd_simnet::{NodeId, Pid};

/// A block placement of `total` processes over `nodes` nodes with
/// `per_node` processes each — the "`N` nodes, `P` processes/node" layout
/// every experiment in the paper uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Node count.
    pub nodes: u32,
    /// Processes per node.
    pub per_node: u32,
}

impl Placement {
    /// `nodes` x `per_node` placement.
    pub fn new(nodes: u32, per_node: u32) -> Placement {
        assert!(nodes > 0 && per_node > 0, "placement must be non-empty");
        Placement { nodes, per_node }
    }

    /// Total processes.
    #[inline]
    pub fn total(&self) -> u32 {
        self.nodes * self.per_node
    }

    /// The node hosting `rank` (block distribution: ranks 0..P on node 0,
    /// P..2P on node 1, ...).
    #[inline]
    pub fn node_of_rank(&self, rank: u32) -> NodeId {
        assert!(rank < self.total(), "rank {rank} out of range");
        NodeId(rank / self.per_node)
    }

    /// Ranks hosted on `node`.
    pub fn ranks_on(&self, node: NodeId) -> std::ops::Range<u32> {
        let start = node.0 * self.per_node;
        start..start + self.per_node
    }

    /// Iterate `(rank, node)` pairs in rank order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, NodeId)> + '_ {
        (0..self.total()).map(move |r| (r, self.node_of_rank(r)))
    }
}

/// A scheduler-assigned placement: rank `i` runs on `nodes[i]`, with no
/// block structure assumed. This is what a cluster scheduler hands a
/// runtime when a job gets whatever slots were free — possibly scattered,
/// possibly several ranks on one node — instead of owning the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    nodes: Vec<NodeId>,
}

impl Assignment {
    /// Assignment from an explicit rank-to-node list.
    pub fn new(nodes: Vec<NodeId>) -> Assignment {
        assert!(!nodes.is_empty(), "assignment must be non-empty");
        Assignment { nodes }
    }

    /// The dense equivalent of a block [`Placement`].
    pub fn from_placement(p: Placement) -> Assignment {
        Assignment {
            nodes: p.iter().map(|(_, n)| n).collect(),
        }
    }

    /// Total ranks.
    #[inline]
    pub fn total(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of_rank(&self, rank: u32) -> NodeId {
        self.nodes[rank as usize]
    }

    /// Ranks hosted on `node`, in rank order.
    pub fn ranks_on(&self, node: NodeId) -> Vec<u32> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| **n == node)
            .map(|(r, _)| r as u32)
            .collect()
    }

    /// Iterate `(rank, node)` pairs in rank order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, NodeId)> + '_ {
        self.nodes.iter().enumerate().map(|(r, n)| (r as u32, *n))
    }

    /// The distinct nodes used, ascending.
    pub fn distinct_nodes(&self) -> Vec<NodeId> {
        let mut v = self.nodes.clone();
        v.sort();
        v.dedup();
        v
    }

    /// The raw rank-to-node table.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

/// Bidirectional map between application-level ranks and engine pids,
/// built as a framework spawns its processes. Lets collectives address
/// "rank r" while the engine addresses `Pid`s (which may be offset by
/// auxiliary processes such as a Spark driver or HDFS datanodes).
#[derive(Debug, Clone, Default)]
pub struct RankMap {
    pids: Vec<Pid>,
}

impl RankMap {
    /// Empty map.
    pub fn new() -> RankMap {
        RankMap::default()
    }

    /// Construct from pids in rank order.
    pub fn from_pids(pids: Vec<Pid>) -> RankMap {
        RankMap { pids }
    }

    /// Register the next rank's pid; returns the rank.
    pub fn push(&mut self, pid: Pid) -> u32 {
        self.pids.push(pid);
        (self.pids.len() - 1) as u32
    }

    /// Pid of `rank`.
    #[inline]
    pub fn pid(&self, rank: u32) -> Pid {
        self.pids[rank as usize]
    }

    /// Rank of `pid`, if it belongs to this map.
    pub fn rank_of(&self, pid: Pid) -> Option<u32> {
        self.pids.iter().position(|p| *p == pid).map(|i| i as u32)
    }

    /// Number of ranks.
    #[inline]
    pub fn len(&self) -> usize {
        self.pids.len()
    }

    /// True when no ranks are registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pids.is_empty()
    }

    /// All pids in rank order.
    pub fn pids(&self) -> &[Pid] {
        &self.pids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_maps_ranks() {
        let p = Placement::new(8, 8);
        assert_eq!(p.total(), 64);
        assert_eq!(p.node_of_rank(0), NodeId(0));
        assert_eq!(p.node_of_rank(7), NodeId(0));
        assert_eq!(p.node_of_rank(8), NodeId(1));
        assert_eq!(p.node_of_rank(63), NodeId(7));
        assert_eq!(p.ranks_on(NodeId(2)), 16..24);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        Placement::new(2, 2).node_of_rank(4);
    }

    #[test]
    fn iter_visits_every_rank_once() {
        let p = Placement::new(3, 5);
        let pairs: Vec<_> = p.iter().collect();
        assert_eq!(pairs.len(), 15);
        assert_eq!(pairs[0], (0, NodeId(0)));
        assert_eq!(pairs[14], (14, NodeId(2)));
    }

    #[test]
    fn assignment_maps_scattered_ranks() {
        let a = Assignment::new(vec![NodeId(3), NodeId(0), NodeId(3), NodeId(7)]);
        assert_eq!(a.total(), 4);
        assert_eq!(a.node_of_rank(0), NodeId(3));
        assert_eq!(a.node_of_rank(3), NodeId(7));
        assert_eq!(a.ranks_on(NodeId(3)), vec![0, 2]);
        assert_eq!(a.distinct_nodes(), vec![NodeId(0), NodeId(3), NodeId(7)]);
    }

    #[test]
    fn assignment_from_block_placement_agrees() {
        let p = Placement::new(3, 2);
        let a = Assignment::from_placement(p);
        for (r, n) in p.iter() {
            assert_eq!(a.node_of_rank(r), n);
        }
        assert_eq!(a.total(), p.total());
    }

    #[test]
    fn rank_map_roundtrip() {
        let mut m = RankMap::new();
        assert!(m.is_empty());
        assert_eq!(m.push(Pid(10)), 0);
        assert_eq!(m.push(Pid(20)), 1);
        assert_eq!(m.pid(1), Pid(20));
        assert_eq!(m.rank_of(Pid(10)), Some(0));
        assert_eq!(m.rank_of(Pid(99)), None);
        assert_eq!(m.len(), 2);
    }
}
