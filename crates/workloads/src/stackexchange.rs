//! The synthetic StackExchange question/answer dataset.
//!
//! Stands in for the text dump behind the paper's AnswersCount benchmark
//! (Sec. V-C): a line-oriented file of posts, each either a question or
//! an answer referencing its question. The benchmark computes the
//! average number of answers per question over an 80 GB file.
//!
//! Determinism: logical record `i` is a question iff
//! `splitmix64(seed, i) % 5 == 0` — so in expectation (and, over the full
//! file, almost exactly) there are 4 answers per question. Sampling picks
//! every `scale`-th logical record, preserving the kind distribution.

use hpcbd_simnet::{InputFormat, Work};

use crate::splitmix64;

/// Post kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostKind {
    /// A question.
    Question,
    /// An answer to some question.
    Answer,
}

/// One parsed post record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Post {
    /// Logical record index (doubles as the post id).
    pub id: u64,
    /// Question or answer.
    pub kind: PostKind,
    /// For answers: the id of the question being answered.
    pub parent: Option<u64>,
    /// Rendered body length in bytes (part of the logical record size).
    pub body_len: u32,
}

/// The dataset: a logical text file of `logical_size` bytes with
/// `RECORD_BYTES`-byte average records, sampled down by `scale`.
#[derive(Debug, Clone)]
pub struct StackExchangeDataset {
    /// Generator seed.
    pub seed: u64,
    /// Logical file size in bytes (e.g. 80 GB).
    pub logical_size: u64,
    /// Logical records represented by one sample record.
    pub scale: u64,
}

/// Average serialized size of one post record, bytes (title + body +
/// metadata in the text dump).
pub const RECORD_BYTES: u64 = 800;

/// One in `QUESTION_MOD` posts is a question (so the true average is
/// `QUESTION_MOD - 1` answers per question).
pub const QUESTION_MOD: u64 = 5;

impl StackExchangeDataset {
    /// A dataset of `logical_size` bytes sampled down by `scale`.
    pub fn new(seed: u64, logical_size: u64, scale: u64) -> StackExchangeDataset {
        assert!(scale >= 1, "scale must be at least 1");
        StackExchangeDataset {
            seed,
            logical_size,
            scale,
        }
    }

    /// The paper's 80 GB AnswersCount input, sampled to ~100k records.
    pub fn paper_80gb() -> StackExchangeDataset {
        let size = 80u64 << 30;
        let records = size / RECORD_BYTES;
        StackExchangeDataset::new(0x5EAC, size, records / 100_000)
    }

    /// Total logical records in the file.
    pub fn logical_records(&self) -> u64 {
        self.logical_size / RECORD_BYTES
    }

    /// Generate logical record `i`.
    pub fn record(&self, i: u64) -> Post {
        let h = splitmix64(self.seed, i);
        let is_q = h.is_multiple_of(QUESTION_MOD);
        if is_q {
            Post {
                id: i,
                kind: PostKind::Question,
                parent: None,
                body_len: 200 + (h >> 32) as u32 % 1200,
            }
        } else {
            // Parent: a question-distributed earlier record (approximate
            // but deterministic: scan back to the nearest question hash).
            let mut p = i.saturating_sub(1 + (h % 97));
            let mut guard = 0;
            while !splitmix64(self.seed, p).is_multiple_of(QUESTION_MOD) && p > 0 && guard < 64 {
                p -= 1;
                guard += 1;
            }
            Post {
                id: i,
                kind: PostKind::Answer,
                parent: Some(p),
                body_len: 100 + (h >> 32) as u32 % 800,
            }
        }
    }

    /// The exact number of sample questions/answers in a byte range —
    /// a closed-form oracle for the benchmarks' outputs.
    pub fn oracle_counts(&self, offset: u64, len: u64) -> (u64, u64) {
        let mut q = 0;
        let mut a = 0;
        for post in self.sample_records(offset, len) {
            match post.kind {
                PostKind::Question => q += 1,
                PostKind::Answer => a += 1,
            }
        }
        (q, a)
    }

    /// Render record `i` as the text line it stands for (for examples
    /// and the quickstart; benchmarks work on parsed `Post`s).
    pub fn render(&self, i: u64) -> String {
        let p = self.record(i);
        match p.kind {
            PostKind::Question => format!("Q\t{}\t-\t{}", p.id, p.body_len),
            PostKind::Answer => {
                format!("A\t{}\t{}\t{}", p.id, p.parent.unwrap_or(0), p.body_len)
            }
        }
    }
}

impl InputFormat for StackExchangeDataset {
    type Rec = Post;

    fn sample_records(&self, offset: u64, len: u64) -> Vec<Post> {
        if len == 0 {
            return Vec::new();
        }
        // A record belongs to the byte range containing its first byte —
        // the same boundary rule on both ends, so any partition of the
        // file yields exactly the whole sample (property-tested).
        let first = offset.div_ceil(RECORD_BYTES);
        let last = ((offset + len).min(self.logical_size))
            .div_ceil(RECORD_BYTES)
            .min(self.logical_records());
        // Sample every `scale`-th logical record within the range.
        let start_k = first.div_ceil(self.scale);
        let mut out = Vec::new();
        let mut k = start_k;
        loop {
            let i = k * self.scale;
            if i >= last {
                break;
            }
            out.push(self.record(i));
            k += 1;
        }
        out
    }

    fn logical_scale(&self) -> f64 {
        self.scale as f64
    }

    fn record_work(&self) -> Work {
        // Parse one ~800-byte text record on the JVM ingest path: UTF-8
        // decode, line split, regex-ish field extraction, and boxed
        // object churn touch many times the raw bytes. Native (x1) this
        // is ~5.6us/record; with the JVM multiplier it lands near
        // 50 MB/s per core — the text-ingest rate of Spark/Hadoop 1.x-2.x
        // era string pipelines (calibrated against Table II's
        // Spark-on-local times). The MPI/OpenMP AnswersCount
        // implementations charge their own (much cheaper) native scan
        // instead of this.
        Work::new(6000.0, 18000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> StackExchangeDataset {
        StackExchangeDataset::new(7, 1 << 20, 4)
    }

    #[test]
    fn records_are_deterministic() {
        let d = ds();
        assert_eq!(d.record(5), d.record(5));
        assert_eq!(d.sample_records(0, 4096), d.sample_records(0, 4096));
    }

    #[test]
    fn answers_reference_earlier_questions() {
        let d = ds();
        for i in 100..300 {
            let p = d.record(i);
            if let Some(parent) = p.parent {
                assert!(parent < i, "answer {i} references later post {parent}");
            }
        }
    }

    #[test]
    fn ranges_partition_the_sample() {
        // Splitting the file into chunks yields the same multiset of
        // sample ids as reading it whole — the invariant every parallel
        // reader depends on.
        let d = ds();
        let whole: Vec<u64> = d
            .sample_records(0, d.logical_size)
            .iter()
            .map(|p| p.id)
            .collect();
        let mut parts: Vec<u64> = Vec::new();
        let chunk = 100_000u64;
        let mut off = 0;
        while off < d.logical_size {
            let len = chunk.min(d.logical_size - off);
            parts.extend(d.sample_records(off, len).iter().map(|p| p.id));
            off += len;
        }
        parts.sort();
        let mut whole_sorted = whole;
        whole_sorted.sort();
        assert_eq!(parts, whole_sorted);
    }

    #[test]
    fn question_ratio_close_to_one_in_five() {
        let d = StackExchangeDataset::new(42, 8 << 20, 1);
        let (q, a) = d.oracle_counts(0, d.logical_size);
        let total = q + a;
        let ratio = q as f64 / total as f64;
        assert!(
            (ratio - 0.2).abs() < 0.02,
            "question ratio {ratio} should be ~0.2"
        );
        // Average answers per question ~ 4.
        let avg = a as f64 / q as f64;
        assert!((avg - 4.0).abs() < 0.5, "avg answers {avg}");
    }

    #[test]
    fn paper_dataset_is_80gb_with_bounded_sample() {
        let d = StackExchangeDataset::paper_80gb();
        assert_eq!(d.logical_size, 80 << 30);
        let sample = d.sample_records(0, d.logical_size).len();
        assert!(
            (90_000..130_000).contains(&sample),
            "sample size {sample} out of expected band"
        );
    }

    #[test]
    fn render_roundtrips_kind() {
        let d = ds();
        for i in 0..50 {
            let line = d.render(i);
            let p = d.record(i);
            match p.kind {
                PostKind::Question => assert!(line.starts_with("Q\t")),
                PostKind::Answer => assert!(line.starts_with("A\t")),
            }
        }
    }

    #[test]
    fn empty_and_tail_ranges() {
        let d = ds();
        assert!(d.sample_records(100, 0).is_empty());
        // A range past EOF yields nothing.
        assert!(d.sample_records(d.logical_size, 4096).is_empty());
    }
}
