//! `hpcbd-workloads` — deterministic synthetic datasets for every
//! benchmark in the study.
//!
//! Real inputs (the 80 GB StackExchange dump, the 8/80 GB read files, the
//! million-vertex PageRank graph) cannot exist in this environment, so
//! each is replaced by a deterministic generator that (a) reports the
//! paper's logical sizes to the cost models and (b) materializes a small
//! sample whose statistics are known in closed form, so correctness can
//! be asserted exactly. See DESIGN.md §2.

#![warn(missing_docs)]

pub mod graph;
pub mod seismic;
pub mod stackexchange;

pub use graph::{pagerank_reference, PowerLawGraph};
pub use seismic::{SeismicSurvey, Trace};
pub use stackexchange::{Post, PostKind, StackExchangeDataset};

/// SplitMix64: the deterministic pseudo-random kernel every generator
/// uses. Stateless — value `i` of stream `seed` is `splitmix64(seed, i)`.
#[inline]
pub fn splitmix64(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_disperses() {
        assert_eq!(splitmix64(1, 42), splitmix64(1, 42));
        assert_ne!(splitmix64(1, 42), splitmix64(2, 42));
        assert_ne!(splitmix64(1, 42), splitmix64(1, 43));
        // Bits spread: low bit roughly balanced over 1000 draws.
        let ones: u32 = (0..1000).map(|i| (splitmix64(7, i) & 1) as u32).sum();
        assert!((400..600).contains(&ones), "low-bit ones = {ones}");
    }
}
