//! The seismic trace dataset (Kirchhoff migration's input).
//!
//! Sec. III-C of the paper motivates the storage discussion with the
//! Kirchhoff depth-migration algorithm, "sometimes over 500 million
//! traces ... several TBs of data", and observes that "parallel I/O does
//! not solve the problem of storage contention if the application is
//! embarrassingly parallel and is reading/writing huge data at the same
//! time". This dataset is that workload: a huge logical array of
//! fixed-size traces, embarrassingly parallel to process, whose cost is
//! almost entirely I/O.

use hpcbd_simnet::{InputFormat, Work};

use crate::splitmix64;

/// One seismic trace (sampled): receiver position and a quality factor
/// derived from the generator, enough for a migration-kernel stand-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trace {
    /// Trace index within the survey.
    pub id: u64,
    /// Pseudo receiver offset in meters.
    pub offset_m: f32,
    /// Pseudo amplitude scale.
    pub amplitude: f32,
}

/// Average bytes per trace on disk (a short modern trace: 4-byte samples
/// x ~500 samples + headers).
pub const TRACE_BYTES: u64 = 2048;

/// A logical seismic survey of `traces` traces, sampled down by `scale`.
#[derive(Debug, Clone)]
pub struct SeismicSurvey {
    /// Generator seed.
    pub seed: u64,
    /// Logical trace count (the paper: up to 5e8).
    pub traces: u64,
    /// Logical traces per sample trace.
    pub scale: u64,
}

impl SeismicSurvey {
    /// A survey with the given logical trace count.
    pub fn new(seed: u64, traces: u64, scale: u64) -> SeismicSurvey {
        assert!(scale >= 1);
        SeismicSurvey {
            seed,
            traces,
            scale,
        }
    }

    /// A "several TBs" survey at example scale: 2 TB logical (1 billion
    /// 2 KB traces would be 2 TB; we use the paper's 500M traces = 1 TB),
    /// sampled to 50k materialized traces.
    pub fn paper_500m() -> SeismicSurvey {
        SeismicSurvey::new(0x5E15, 500_000_000, 10_000)
    }

    /// Logical file size in bytes.
    pub fn logical_size(&self) -> u64 {
        self.traces * TRACE_BYTES
    }

    /// Generate logical trace `i`.
    pub fn trace(&self, i: u64) -> Trace {
        let h = splitmix64(self.seed, i);
        Trace {
            id: i,
            offset_m: (h % 10_000) as f32 / 10.0,
            amplitude: 0.1 + ((h >> 32) % 1000) as f32 / 1000.0,
        }
    }

    /// The migration kernel's contribution from one trace (a cheap
    /// deterministic stand-in whose sum is oracle-checkable).
    pub fn kernel(t: &Trace) -> f64 {
        (t.amplitude as f64) / (1.0 + t.offset_m as f64 / 1000.0)
    }
}

impl InputFormat for SeismicSurvey {
    type Rec = Trace;

    fn sample_records(&self, offset: u64, len: u64) -> Vec<Trace> {
        if len == 0 {
            return Vec::new();
        }
        let size = self.logical_size();
        let first = offset.div_ceil(TRACE_BYTES);
        let last = ((offset + len).min(size))
            .div_ceil(TRACE_BYTES)
            .min(self.traces);
        let start_k = first.div_ceil(self.scale);
        let mut out = Vec::new();
        let mut k = start_k;
        while k * self.scale < last {
            out.push(self.trace(k * self.scale));
            k += 1;
        }
        out
    }

    fn logical_scale(&self) -> f64 {
        self.scale as f64
    }

    fn record_work(&self) -> Work {
        // The migration kernel is a handful of flops per trace sample;
        // the workload is I/O-bound by construction (Sec. III-C).
        Work::new(500.0, TRACE_BYTES as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_deterministic_and_bounded() {
        let s = SeismicSurvey::new(1, 1_000_000, 100);
        assert_eq!(s.trace(5), s.trace(5));
        let t = s.trace(123);
        assert!(t.offset_m >= 0.0 && t.offset_m < 1000.0);
        assert!(t.amplitude > 0.0 && t.amplitude < 1.2);
    }

    #[test]
    fn chunking_invariance() {
        let s = SeismicSurvey::new(2, 100_000, 64);
        let size = s.logical_size();
        let whole: Vec<u64> = s.sample_records(0, size).iter().map(|t| t.id).collect();
        let mut parts = Vec::new();
        let chunk = size / 7 + 13;
        let mut off = 0;
        while off < size {
            let len = chunk.min(size - off);
            parts.extend(s.sample_records(off, len).iter().map(|t| t.id));
            off += len;
        }
        parts.sort_unstable();
        let mut w = whole;
        w.sort_unstable();
        assert_eq!(parts, w);
    }

    #[test]
    fn paper_survey_is_terabyte_scale() {
        let s = SeismicSurvey::paper_500m();
        assert_eq!(s.logical_size(), 500_000_000 * TRACE_BYTES); // 1 TB
        let sample = s.sample_records(0, s.logical_size()).len();
        assert_eq!(sample, 50_000);
    }

    #[test]
    fn kernel_is_positive_and_finite() {
        let s = SeismicSurvey::new(3, 10_000, 10);
        for t in s.sample_records(0, s.logical_size()) {
            let k = SeismicSurvey::kernel(&t);
            assert!(k.is_finite() && k > 0.0);
        }
    }
}
