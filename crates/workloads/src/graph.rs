//! The PageRank input graph and a sequential reference solver.
//!
//! Stands in for BigDataBench's million-vertex web graph (Sec. V-D):
//! a deterministic directed graph with a power-law out-degree
//! distribution. The same graph object backs the MPI, Spark and
//! OpenSHMEM PageRank implementations and the sequential oracle.

use hpcbd_simnet::{InputFormat, Work};

use crate::splitmix64;

/// A deterministic directed graph with power-law out-degrees.
#[derive(Debug, Clone)]
pub struct PowerLawGraph {
    /// Vertex count.
    pub vertices: u32,
    /// Generator seed.
    pub seed: u64,
    /// Power-law exponent knob: out-degree of vertex `v` is
    /// `max(1, base / (1 + rank(v))^0.5)`-ish; larger `base` = denser.
    pub base_degree: u32,
}

impl PowerLawGraph {
    /// Build a graph description (edges are generated lazily).
    pub fn new(vertices: u32, seed: u64, base_degree: u32) -> PowerLawGraph {
        assert!(vertices > 0);
        PowerLawGraph {
            vertices,
            seed,
            base_degree,
        }
    }

    /// The paper's 1,000,000-vertex PageRank input, scaled 1:100 for
    /// materialization (10k sample vertices, average degree ≈ 16 like a
    /// web-graph crawl). All costing multiplies by the scale.
    pub fn paper_1m_sample() -> (PowerLawGraph, u64) {
        (PowerLawGraph::new(10_000, 0xBDB, 8), 100)
    }

    /// Out-degree of vertex `v` (power-law-ish, deterministic):
    /// `base / sqrt(rank(v)/n)` — average degree ≈ `2 * base`, maximum
    /// ≈ `base * sqrt(n)`.
    pub fn out_degree(&self, v: u32) -> u32 {
        // Permute v so high-degree vertices are spread across the id
        // space, then apply the heavy-tailed profile.
        let r = (splitmix64(self.seed, v as u64) % self.vertices as u64) as u32;
        let d = (self.base_degree as f64 / ((1.0 + r as f64) / self.vertices as f64).sqrt()).ceil()
            as u32;
        d.clamp(1, self.vertices.saturating_sub(1).max(1))
    }

    /// Out-neighbours of `v`.
    pub fn neighbours(&self, v: u32) -> Vec<u32> {
        let d = self.out_degree(v);
        (0..d)
            .map(|k| {
                let h = splitmix64(self.seed ^ 0xA5A5_A5A5, ((v as u64) << 24) | k as u64);
                let mut u = (h % self.vertices as u64) as u32;
                if u == v {
                    u = (u + 1) % self.vertices;
                }
                u
            })
            .collect()
    }

    /// All edges, in vertex order.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        (0..self.vertices)
            .flat_map(|v| self.neighbours(v).into_iter().map(move |u| (v, u)))
            .collect()
    }

    /// Total edge count.
    pub fn edge_count(&self) -> u64 {
        (0..self.vertices).map(|v| self.out_degree(v) as u64).sum()
    }

    /// Adjacency lists for all vertices (index = vertex id).
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        (0..self.vertices).map(|v| self.neighbours(v)).collect()
    }
}

/// Average serialized bytes of one edge in a text edge-list file.
pub const EDGE_BYTES: u64 = 16;

/// Edge-list file view of a graph, for the Spark/Hadoop paths: logical
/// size `edge_count * EDGE_BYTES * scale`, sample records are the real
/// edges.
#[derive(Debug, Clone)]
pub struct EdgeListFile {
    /// The sample graph.
    pub graph: PowerLawGraph,
    /// Logical edges represented by one sample edge.
    pub scale: u64,
    edges_per_byte_hint: u64,
}

impl EdgeListFile {
    /// Wrap a graph as a logical edge-list file.
    pub fn new(graph: PowerLawGraph, scale: u64) -> EdgeListFile {
        EdgeListFile {
            graph,
            scale,
            edges_per_byte_hint: EDGE_BYTES,
        }
    }

    /// Logical file size in bytes.
    pub fn logical_size(&self) -> u64 {
        self.graph.edge_count() * self.scale * self.edges_per_byte_hint
    }
}

impl InputFormat for EdgeListFile {
    type Rec = (u32, u32);

    fn sample_records(&self, offset: u64, len: u64) -> Vec<(u32, u32)> {
        // Partition the *vertex* space proportionally to the byte range
        // (records of one vertex stay together, like lines in a split).
        let total = self.logical_size();
        if total == 0 || len == 0 || offset >= total {
            return Vec::new();
        }
        // Consistent boundary rule (ceil at both ends) so adjacent byte
        // ranges partition the vertex space exactly.
        let n = self.graph.vertices as u64;
        let v0 = (offset * n).div_ceil(total);
        let v1 = (((offset + len).min(total)) * n).div_ceil(total);
        (v0..v1)
            .flat_map(|v| {
                self.graph
                    .neighbours(v as u32)
                    .into_iter()
                    .map(move |u| (v as u32, u))
            })
            .collect()
    }

    fn logical_scale(&self) -> f64 {
        self.scale as f64
    }

    fn record_work(&self) -> Work {
        Work::new(40.0, EDGE_BYTES as f64 * 2.0)
    }
}

/// Sequential PageRank oracle: `iters` power iterations with damping
/// 0.85, dangling-free (every vertex has out-degree >= 1). Returns the
/// rank vector.
pub fn pagerank_reference(graph: &PowerLawGraph, iters: u32) -> Vec<f64> {
    let n = graph.vertices as usize;
    let adj = graph.adjacency();
    let mut ranks = vec![1.0f64; n];
    for _ in 0..iters {
        let mut contrib = vec![0.0f64; n];
        for (v, outs) in adj.iter().enumerate() {
            let share = ranks[v] / outs.len() as f64;
            for u in outs {
                contrib[*u as usize] += share;
            }
        }
        for (r, c) in ranks.iter_mut().zip(&contrib) {
            *r = 0.15 + 0.85 * c;
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> PowerLawGraph {
        PowerLawGraph::new(1000, 3, 8)
    }

    #[test]
    fn degrees_are_deterministic_and_bounded() {
        let graph = g();
        for v in 0..graph.vertices {
            let d = graph.out_degree(v);
            assert!(d >= 1 && d < graph.vertices);
            assert_eq!(graph.neighbours(v).len(), d as usize);
            assert_eq!(graph.neighbours(v), graph.neighbours(v));
        }
    }

    #[test]
    fn no_self_loops() {
        let graph = g();
        for (v, u) in graph.edges() {
            assert_ne!(v, u);
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let graph = g();
        let mut degs: Vec<u32> = (0..graph.vertices).map(|v| graph.out_degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Top vertex has much higher degree than the median.
        let median = degs[degs.len() / 2];
        assert!(
            degs[0] >= median * 5,
            "top degree {} vs median {median}",
            degs[0]
        );
    }

    #[test]
    fn edge_count_matches_edges() {
        let graph = g();
        assert_eq!(graph.edge_count(), graph.edges().len() as u64);
    }

    #[test]
    fn pagerank_conserves_mass_approximately() {
        let graph = g();
        let ranks = pagerank_reference(&graph, 10);
        let total: f64 = ranks.iter().sum();
        let n = graph.vertices as f64;
        // With damping 0.15/0.85 and no dangling mass loss, total ~ n.
        assert!((total - n).abs() / n < 0.05, "total rank {total} vs n {n}");
        assert!(ranks.iter().all(|r| *r > 0.0));
    }

    #[test]
    fn pagerank_converges() {
        let graph = g();
        let a = pagerank_reference(&graph, 40);
        let b = pagerank_reference(&graph, 41);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!((diff / graph.vertices as f64) < 1e-2, "residual {diff}");
        let early = pagerank_reference(&graph, 5);
        let early_diff: f64 = a.iter().zip(&early).map(|(x, y)| (x - y).abs()).sum();
        assert!(early_diff > diff, "iteration must reduce the residual");
    }

    #[test]
    fn edge_list_ranges_partition_edges() {
        let f = EdgeListFile::new(g(), 100);
        let total = f.logical_size();
        let whole = f.sample_records(0, total);
        let mut parts = Vec::new();
        let chunk = total / 7;
        let mut off = 0;
        while off < total {
            let len = chunk.min(total - off);
            parts.extend(f.sample_records(off, len));
            off += len;
        }
        assert_eq!(parts.len(), whole.len());
        let mut a = parts;
        let mut b = whole;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn paper_graph_has_expected_scale() {
        let (graph, scale) = PowerLawGraph::paper_1m_sample();
        assert_eq!(graph.vertices as u64 * scale, 1_000_000);
    }
}
