//! Send→Recv causal matching over a captured event stream.
//!
//! The trace records message endpoints independently: the sender logs a
//! `Send { dst, bytes }` span covering its endpoint CPU cost, the
//! receiver logs a `Recv { src, bytes }` span covering its blocking
//! time. The engine delivers messages between a (src, dst) pair of a
//! given logical size in FIFO order (the sender NIC serializes, and
//! mailbox matching takes the earliest arrival), so the k-th send on
//! the stream `(src, dst, bytes)` pairs with the k-th completed recv on
//! the same stream. Tag-selective receives can reorder *differently
//! sized* messages freely — those land on different streams — while
//! same-size reordering is rare and only weakens attribution, never
//! correctness: a pair whose send ends after the recv ends is causally
//! impossible and is dropped (counted in
//! [`CausalGraph::unmatched_recvs`]).
//!
//! Determinism: input order is the deterministic trace export order,
//! per-stream ordering is by `(end, start, index)` — no wall-clock
//! state anywhere.

use std::collections::HashMap;

use hpcbd_simnet::{EventKind, TraceEvent};

/// One matched message: indices into the captured event slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalEdge {
    /// Index of the `Send` event.
    pub send: usize,
    /// Index of the `Recv` event that consumed it.
    pub recv: usize,
}

/// The cross-process causal structure of one run.
#[derive(Debug, Default)]
pub struct CausalGraph {
    /// Matched send→recv pairs, ordered by recv event index.
    pub edges: Vec<CausalEdge>,
    /// For each event index, the matched send's index if the event is a
    /// matched `Recv`.
    send_of_recv: HashMap<usize, usize>,
    /// `Recv` events with no causally valid matching send.
    pub unmatched_recvs: u64,
}

impl CausalGraph {
    /// The matched `Send` event index for recv event `recv_idx`, if any.
    pub fn matched_send(&self, recv_idx: usize) -> Option<usize> {
        self.send_of_recv.get(&recv_idx).copied()
    }
}

/// Build the causal graph of a captured run. `events` must be in the
/// deterministic export order ([`hpcbd_simnet::Trace::sorted_events`]).
pub fn match_events(events: &[TraceEvent]) -> CausalGraph {
    // Stream key: (src pid, dst pid, logical bytes).
    type Key = (u32, u32, u64);
    let mut sends: HashMap<Key, Vec<usize>> = HashMap::new();
    let mut recvs: HashMap<Key, Vec<usize>> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::Send { dst, bytes } => {
                sends.entry((e.pid.0, dst.0, bytes)).or_default().push(i);
            }
            EventKind::Recv { src, bytes } => {
                recvs.entry((src.0, e.pid.0, bytes)).or_default().push(i);
            }
            _ => {}
        }
    }
    let mut graph = CausalGraph::default();
    // Deterministic stream visit order (HashMap iteration order is not).
    let mut keys: Vec<Key> = recvs.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let mut rs = recvs.remove(&key).unwrap_or_default();
        let mut ss = sends.remove(&key).unwrap_or_default();
        // Sends fire in start order (already the export order); recvs
        // complete in end order — the mailbox hands out earliest
        // arrivals first, so completion order is the FIFO order.
        ss.sort_by_key(|&i| (events[i].start, events[i].end, i));
        rs.sort_by_key(|&i| (events[i].end, events[i].start, i));
        let mut si = ss.into_iter();
        for r in rs {
            match si.next() {
                // A send that finishes after the recv completes cannot
                // have caused it; drop the pair rather than invent a
                // backwards edge.
                Some(s) if events[s].end <= events[r].end => {
                    graph.edges.push(CausalEdge { send: s, recv: r });
                    graph.send_of_recv.insert(r, s);
                }
                _ => graph.unmatched_recvs += 1,
            }
        }
    }
    graph.edges.sort_unstable_by_key(|e| (e.recv, e.send));
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{Pid, SimTime};

    fn ev(pid: u32, start: u64, end: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            pid: Pid(pid),
            start: SimTime(start),
            end: SimTime(end),
            kind,
        }
    }

    #[test]
    fn fifo_pairs_in_order() {
        let events = vec![
            ev(
                0,
                0,
                10,
                EventKind::Send {
                    dst: Pid(1),
                    bytes: 64,
                },
            ),
            ev(
                0,
                10,
                20,
                EventKind::Send {
                    dst: Pid(1),
                    bytes: 64,
                },
            ),
            ev(
                1,
                0,
                30,
                EventKind::Recv {
                    src: Pid(0),
                    bytes: 64,
                },
            ),
            ev(
                1,
                30,
                45,
                EventKind::Recv {
                    src: Pid(0),
                    bytes: 64,
                },
            ),
        ];
        let g = match_events(&events);
        assert_eq!(g.edges.len(), 2);
        assert_eq!(g.matched_send(2), Some(0));
        assert_eq!(g.matched_send(3), Some(1));
        assert_eq!(g.unmatched_recvs, 0);
    }

    #[test]
    fn different_sizes_are_different_streams() {
        let events = vec![
            ev(
                0,
                0,
                10,
                EventKind::Send {
                    dst: Pid(1),
                    bytes: 100,
                },
            ),
            ev(
                0,
                10,
                20,
                EventKind::Send {
                    dst: Pid(1),
                    bytes: 200,
                },
            ),
            // Receiver takes the 200-byte message first (tag selection).
            ev(
                1,
                0,
                30,
                EventKind::Recv {
                    src: Pid(0),
                    bytes: 200,
                },
            ),
            ev(
                1,
                30,
                45,
                EventKind::Recv {
                    src: Pid(0),
                    bytes: 100,
                },
            ),
        ];
        let g = match_events(&events);
        assert_eq!(g.matched_send(2), Some(1));
        assert_eq!(g.matched_send(3), Some(0));
    }

    #[test]
    fn causally_impossible_pairs_are_dropped() {
        let events = vec![
            // Send finishes after the recv completes: bogus pair.
            ev(
                0,
                0,
                50,
                EventKind::Send {
                    dst: Pid(1),
                    bytes: 8,
                },
            ),
            ev(
                1,
                0,
                20,
                EventKind::Recv {
                    src: Pid(0),
                    bytes: 8,
                },
            ),
            // And a recv with no send at all.
            ev(
                1,
                20,
                40,
                EventKind::Recv {
                    src: Pid(2),
                    bytes: 8,
                },
            ),
        ];
        let g = match_events(&events);
        assert!(g.edges.is_empty());
        assert_eq!(g.unmatched_recvs, 2);
        assert_eq!(g.matched_send(1), None);
    }
}
