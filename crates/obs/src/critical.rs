//! Critical-path extraction by backward time-walk.
//!
//! Starting at the last-finishing process at the makespan, walk
//! backwards through virtual time. At each step the walk sits on one
//! process at a `cursor` time and asks what that process was doing:
//!
//! * an event covering the cursor → attribute the covered slice to the
//!   event's category; if the event is a `Recv` whose matched send
//!   finished strictly inside the receive window, the message — not the
//!   receiver — was the bottleneck: attribute the slice after the send
//!   completed as `Comm` and *hop to the sender* (the causal edge);
//! * no event covering the cursor → the process was between visible
//!   operations (framework `advance` overheads or genuine idling):
//!   attribute the gap as `Idle`.
//!
//! Each step strictly decreases the cursor and attributes exactly the
//! interval it skipped, so the produced segments tile `[0, makespan]`
//! with no gaps or overlaps: **the per-phase breakdown sums to the
//! makespan in exact integer nanoseconds**, and the critical-path
//! length (makespan minus `Idle`) can never exceed the makespan.
//!
//! Each segment is also attributed to the innermost phase span
//! (recorded via `ProcCtx::span_open`) enclosing its start point on the
//! process the walk was on, which is what turns "4.2 s of comm" into
//! "4.2 s of comm inside `pagerank/iter/*/shuffle`".

use hpcbd_simnet::observe::RunCapture;
use hpcbd_simnet::{EventKind, Pid, SimDuration, SimTime};

use crate::causal::CausalGraph;

/// Where a slice of the critical path went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Modeled computation (including endpoint CPU costs inside other
    /// categories' events is *not* re-split: the event's own category
    /// wins).
    Compute,
    /// Message transfer: send overhead, wire/flight time, RDMA.
    Comm,
    /// Local disk and NFS operations (including device queueing).
    Disk,
    /// Blocked in a receive with no causally matched sender to hop to.
    Wait,
    /// No visible operation covered this slice: framework bookkeeping
    /// (`advance`) or genuine idling.
    Idle,
}

impl Category {
    /// All categories, in the fixed report order.
    pub const ALL: [Category; 5] = [
        Category::Compute,
        Category::Comm,
        Category::Disk,
        Category::Wait,
        Category::Idle,
    ];

    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::Comm => "comm",
            Category::Disk => "disk",
            Category::Wait => "wait",
            Category::Idle => "idle",
        }
    }

    /// Index into fixed-size per-category arrays.
    pub fn index(self) -> usize {
        match self {
            Category::Compute => 0,
            Category::Comm => 1,
            Category::Disk => 2,
            Category::Wait => 3,
            Category::Idle => 4,
        }
    }
}

/// One attributed slice of the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Process the walk was on.
    pub pid: Pid,
    /// Slice start (virtual time).
    pub start: SimTime,
    /// Slice end (virtual time); `start < end` always.
    pub end: SimTime,
    /// Attributed category.
    pub category: Category,
    /// Innermost enclosing phase label at `start` on `pid`, or the
    /// empty string outside any span.
    pub phase: String,
}

/// The walk's result: segments tiling `[0, makespan]` exactly.
#[derive(Debug, Default)]
pub struct CriticalPath {
    /// Attributed slices in walk order (decreasing time).
    pub segments: Vec<Segment>,
    /// The run's makespan.
    pub makespan: SimTime,
    /// Critical-path length: makespan minus the `Idle` share. Always
    /// `<= makespan`.
    pub length: SimDuration,
    /// Nanoseconds attributed per [`Category`] (indexed by
    /// [`Category::index`]); sums to the makespan exactly.
    pub by_category: [u64; 5],
}

/// Per-process view of the capture used by the walk: non-instant leaf
/// events (sorted, non-overlapping) and phase spans for attribution.
struct ProcView {
    /// `(start, end, event index)` of walkable leaf events.
    leaves: Vec<(SimTime, SimTime, usize)>,
    /// `(start, end, depth, label)` of phase spans, sorted by start.
    phases: Vec<(SimTime, SimTime, u32, String)>,
}

impl ProcView {
    /// Innermost phase containing `t` (half-open `[start, end)`).
    fn phase_at(&self, t: SimTime) -> &str {
        let mut best: Option<&(SimTime, SimTime, u32, String)> = None;
        for p in &self.phases {
            if p.0 > t {
                break;
            }
            if t < p.1 {
                let better = match best {
                    None => true,
                    Some(b) => (p.2, p.0) >= (b.2, b.0),
                };
                if better {
                    best = Some(p);
                }
            }
        }
        best.map(|p| p.3.as_str()).unwrap_or("")
    }

    /// The last leaf event starting strictly before `t`, if any.
    fn last_starting_before(&self, t: SimTime) -> Option<(SimTime, SimTime, usize)> {
        let i = self.leaves.partition_point(|&(s, _, _)| s < t);
        (i > 0).then(|| self.leaves[i - 1])
    }
}

/// Compute the critical path of a captured run.
pub fn critical_path(cap: &RunCapture, graph: &CausalGraph) -> CriticalPath {
    let nprocs = cap.proc_names.len();
    let mut views: Vec<ProcView> = (0..nprocs)
        .map(|_| ProcView {
            leaves: Vec::new(),
            phases: Vec::new(),
        })
        .collect();
    for (i, e) in cap.events.iter().enumerate() {
        let v = &mut views[e.pid.index()];
        match &e.kind {
            EventKind::Phase { label, depth } => {
                v.phases.push((e.start, e.end, *depth, label.to_string()));
            }
            EventKind::Fault(_) => {}
            _ if e.start < e.end => v.leaves.push((e.start, e.end, i)),
            _ => {}
        }
    }
    for v in &mut views {
        v.leaves.sort_unstable_by_key(|&(s, e, i)| (s, e, i));
        v.phases.sort_by_key(|a| (a.0, a.2));
    }

    let mut out = CriticalPath {
        makespan: cap.makespan,
        ..CriticalPath::default()
    };
    // Start on the last-finishing process (lowest pid on ties — the
    // finishes vector is deterministic, so the tie-break is too).
    let Some(start_pid) = (0..nprocs).max_by_key(|&i| (cap.finishes[i], std::cmp::Reverse(i)))
    else {
        return out;
    };
    let mut pid = Pid(start_pid as u32);
    let mut cursor = cap.makespan;

    let push = |out: &mut CriticalPath,
                pid: Pid,
                start: SimTime,
                end: SimTime,
                cat: Category,
                phase: &str| {
        debug_assert!(start < end);
        out.by_category[cat.index()] += (end - start).nanos();
        out.segments.push(Segment {
            pid,
            start,
            end,
            category: cat,
            phase: phase.to_string(),
        });
    };

    while cursor > SimTime::ZERO {
        let view = &views[pid.index()];
        match view.last_starting_before(cursor) {
            Some((estart, eend, eidx)) if eend >= cursor => {
                // Covering event: estart < cursor <= eend.
                let e = &cap.events[eidx];
                match &e.kind {
                    EventKind::Recv { .. } => {
                        match graph.matched_send(eidx).map(|s| &cap.events[s]) {
                            Some(s) if s.end < cursor && s.end > estart => {
                                // The message was in flight until after
                                // the receiver blocked: hop to the
                                // sender at its send-completion time.
                                let phase = view.phase_at(s.end);
                                push(&mut out, pid, s.end, cursor, Category::Comm, phase);
                                cursor = s.end;
                                pid = s.pid;
                            }
                            Some(s) if s.end <= estart => {
                                // Message had already arrived when the
                                // receive posted; the slice is endpoint
                                // processing.
                                let phase = view.phase_at(estart);
                                push(&mut out, pid, estart, cursor, Category::Comm, phase);
                                cursor = estart;
                            }
                            _ => {
                                // No causal sender to follow: blocked.
                                let phase = view.phase_at(estart);
                                push(&mut out, pid, estart, cursor, Category::Wait, phase);
                                cursor = estart;
                            }
                        }
                    }
                    kind => {
                        let cat = match kind {
                            EventKind::Compute => Category::Compute,
                            EventKind::Send { .. } | EventKind::OneSided { .. } => Category::Comm,
                            EventKind::DiskRead { .. }
                            | EventKind::DiskWrite { .. }
                            | EventKind::Nfs { .. } => Category::Disk,
                            _ => Category::Idle, // unreachable: filtered above
                        };
                        let phase = view.phase_at(estart);
                        push(&mut out, pid, estart, cursor, cat, phase);
                        cursor = estart;
                    }
                }
            }
            hit => {
                // Gap back to the previous event's end (or to time zero).
                let gap_start = hit.map(|(_, eend, _)| eend).unwrap_or(SimTime::ZERO);
                debug_assert!(gap_start < cursor);
                let phase = view.phase_at(gap_start);
                push(&mut out, pid, gap_start, cursor, Category::Idle, phase);
                cursor = gap_start;
            }
        }
    }
    out.length =
        SimDuration::from_nanos(cap.makespan.nanos() - out.by_category[Category::Idle.index()]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::match_events;
    use hpcbd_simnet::{NodeId, ProcStats, TraceEvent};

    fn cap_of(events: Vec<TraceEvent>, finishes: Vec<u64>) -> RunCapture {
        let n = finishes.len();
        RunCapture {
            proc_names: (0..n).map(|i| format!("p{i}")).collect(),
            proc_nodes: (0..n).map(|_| NodeId(0)).collect(),
            finishes: finishes.iter().map(|&f| SimTime(f)).collect(),
            stats: (0..n).map(|_| ProcStats::default()).collect(),
            makespan: SimTime(finishes.iter().copied().max().unwrap_or(0)),
            cluster_nodes: 1,
            dropped_msgs: 0,
            events,
            telemetry_interval: None,
            metric_points: Vec::new(),
            spec_commits: 0,
            spec_rollbacks: 0,
        }
    }

    fn ev(pid: u32, start: u64, end: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            pid: Pid(pid),
            start: SimTime(start),
            end: SimTime(end),
            kind,
        }
    }

    #[test]
    fn segments_tile_the_makespan_exactly() {
        // p0: compute [0,40], send [40,50];  p1: recv [0,80], disk [80,100].
        let events = vec![
            ev(0, 0, 40, EventKind::Compute),
            ev(
                0,
                40,
                50,
                EventKind::Send {
                    dst: Pid(1),
                    bytes: 8,
                },
            ),
            ev(
                1,
                0,
                80,
                EventKind::Recv {
                    src: Pid(0),
                    bytes: 8,
                },
            ),
            ev(1, 80, 100, EventKind::DiskWrite { bytes: 8 }),
        ];
        let cap = cap_of(events, vec![50, 100]);
        let graph = match_events(&cap.events);
        let cp = critical_path(&cap, &graph);
        let total: u64 = cp.by_category.iter().sum();
        assert_eq!(total, 100, "attribution must tile [0, makespan]");
        assert_eq!(cp.length.nanos() + cp.by_category[4], 100);
        assert!(cp.length.nanos() <= cap.makespan.nanos());
        // The walk hops the causal edge: disk ← comm (flight) ← send ←
        // compute on p0.
        assert_eq!(cp.by_category[Category::Disk.index()], 20);
        assert_eq!(cp.by_category[Category::Comm.index()], 40); // [50,80] flight + [40,50] send span
        assert_eq!(cp.by_category[Category::Compute.index()], 40);
        assert_eq!(cp.by_category[Category::Idle.index()], 0);
        // Walk crossed to p0 through the matched send.
        assert!(cp.segments.iter().any(|s| s.pid == Pid(0)));
    }

    #[test]
    fn gaps_become_idle_and_unmatched_recvs_become_wait() {
        let events = vec![
            // p0 idles until 30 then computes; a recv with no sender.
            ev(0, 30, 60, EventKind::Compute),
            ev(
                0,
                60,
                90,
                EventKind::Recv {
                    src: Pid(1),
                    bytes: 8,
                },
            ),
        ];
        let cap = cap_of(events, vec![90]);
        let graph = match_events(&cap.events);
        let cp = critical_path(&cap, &graph);
        assert_eq!(cp.by_category.iter().sum::<u64>(), 90);
        assert_eq!(cp.by_category[Category::Idle.index()], 30);
        assert_eq!(cp.by_category[Category::Wait.index()], 30);
        assert_eq!(cp.by_category[Category::Compute.index()], 30);
        assert_eq!(cp.length, SimDuration::from_nanos(60));
    }

    #[test]
    fn phases_attribute_by_innermost_containment() {
        let events = vec![
            ev(
                0,
                0,
                100,
                EventKind::Phase {
                    label: "outer".into(),
                    depth: 0,
                },
            ),
            ev(
                0,
                20,
                60,
                EventKind::Phase {
                    label: "outer/inner".into(),
                    depth: 1,
                },
            ),
            ev(0, 0, 20, EventKind::Compute),
            ev(0, 20, 60, EventKind::Compute),
            ev(0, 60, 100, EventKind::Compute),
        ];
        let cap = cap_of(events, vec![100]);
        let graph = match_events(&cap.events);
        let cp = critical_path(&cap, &graph);
        let by_phase: Vec<(&str, u64)> = cp
            .segments
            .iter()
            .map(|s| (s.phase.as_str(), (s.end - s.start).nanos()))
            .collect();
        assert!(by_phase.contains(&("outer/inner", 40)));
        assert_eq!(
            by_phase
                .iter()
                .filter(|(p, _)| *p == "outer")
                .map(|(_, n)| n)
                .sum::<u64>(),
            60
        );
    }

    #[test]
    fn empty_capture_yields_empty_path() {
        let cap = cap_of(Vec::new(), vec![0]);
        let cp = critical_path(&cap, &CausalGraph::default());
        assert!(cp.segments.is_empty());
        assert_eq!(cp.length, SimDuration::ZERO);
    }
}
