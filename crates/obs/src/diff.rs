//! Line-level first-divergence diffing for deterministic text artifacts.
//!
//! Everything this workspace emits for conformance checking — CSV
//! tables, `hpcbd.report.v1` JSON, trace exports — is line-oriented and
//! byte-deterministic, so "where do two outputs first differ" is the
//! whole diagnosis: a full diff of two diverged event streams is noise,
//! the first differing line is the bug's address. Used by the golden
//! digest registry and the `conformance` gate (`hpcbd-check`).

/// The first point at which two line-oriented texts disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineDivergence {
    /// 1-indexed line number of the first disagreement.
    pub line: usize,
    /// The expected line, or `None` if the expected text ended here.
    pub expected: Option<String>,
    /// The actual line, or `None` if the actual text ended here.
    pub got: Option<String>,
}

impl LineDivergence {
    /// Compact one-screen rendering for gate output.
    pub fn render(&self) -> String {
        fn show(side: &Option<String>) -> String {
            match side {
                Some(l) => format!("{l:?}"),
                None => "<end of output>".to_string(),
            }
        }
        format!(
            "first divergence at line {}:\n  expected: {}\n  got:      {}",
            self.line,
            show(&self.expected),
            show(&self.got)
        )
    }
}

/// Compare two texts line by line and report the first differing line,
/// or `None` when they are identical. A trailing-newline difference
/// counts: an extra line on either side diverges at the position where
/// the other side ended.
pub fn first_divergence(expected: &str, got: &str) -> Option<LineDivergence> {
    let mut e = expected.lines();
    let mut g = got.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (e.next(), g.next()) {
            (None, None) => return None,
            (el, gl) if el == gl => continue,
            (el, gl) => {
                return Some(LineDivergence {
                    line,
                    expected: el.map(str::to_string),
                    got: gl.map(str::to_string),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_have_no_divergence() {
        assert_eq!(first_divergence("a\nb\nc\n", "a\nb\nc\n"), None);
        assert_eq!(first_divergence("", ""), None);
    }

    #[test]
    fn first_differing_line_is_reported() {
        let d = first_divergence("a\nb\nc\n", "a\nX\nc\n").unwrap();
        assert_eq!(d.line, 2);
        assert_eq!(d.expected.as_deref(), Some("b"));
        assert_eq!(d.got.as_deref(), Some("X"));
        assert!(d.render().contains("line 2"));
    }

    #[test]
    fn length_mismatch_diverges_at_the_shorter_end() {
        let d = first_divergence("a\nb\n", "a\nb\nextra\n").unwrap();
        assert_eq!(d.line, 3);
        assert_eq!(d.expected, None);
        assert_eq!(d.got.as_deref(), Some("extra"));
        assert!(d.render().contains("<end of output>"));

        let d = first_divergence("a\nb\nmore\n", "a\nb\n").unwrap();
        assert_eq!(d.line, 3);
        assert_eq!(d.got, None);
    }
}
