//! Recovery SLO metrics: time-to-detect, time-to-recover, and work
//! replayed, per fault event.
//!
//! The fault plan injects crashes; the runtimes record structured
//! [`FaultEvent`]s while recovering (see DESIGN.md §13). This module
//! folds those trace records into per-crash service-level metrics:
//!
//! * **time-to-detect** — from the crash instant (the back-dated
//!   [`FaultEvent::NodeCrash`] record) to the first *detection*
//!   record naming that node (`rank_failure_detected`,
//!   `pe_failure_detected`, `node_lost`).
//! * **time-to-recover** — from the crash instant to the last recovery
//!   action attributed to it (every [`FaultEvent::Recovery`] record is
//!   attributed to the most recent crash at or before its timestamp).
//! * **work replayed** — the summed `detail` of replay-class records
//!   (`checkpoint_restart`, `partial_restart`: iterations re-executed,
//!   summed across ranks) plus the count of task-grained re-executions
//!   (`task_retry`, `map_reexec`, `speculative_task`).
//!
//! All numbers derive from the deterministic event stream, so they are
//! bit-identical across execution modes and belong in the pinned
//! `hpcbd.report.v1` report.

use std::collections::BTreeMap;

use hpcbd_simnet::observe::RunCapture;
use hpcbd_simnet::{EventKind, FaultEvent, SimTime};

/// Recovery actions that mean "the runtime noticed node X died".
pub const DETECTION_ACTIONS: [&str; 3] =
    ["rank_failure_detected", "pe_failure_detected", "node_lost"];

/// Recovery actions whose `detail` counts re-executed iterations.
pub const REPLAY_ACTIONS: [&str; 2] = ["checkpoint_restart", "partial_restart"];

/// Recovery actions that each stand for one re-executed task.
pub const TASK_REPLAY_ACTIONS: [&str; 3] = ["task_retry", "map_reexec", "speculative_task"];

/// Per-crash recovery metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecovery {
    /// The crashed node.
    pub node: u32,
    /// Virtual time the node died (back-dated crash record).
    pub crash: SimTime,
    /// First detection record naming this node, if any.
    pub detect: Option<SimTime>,
    /// Last recovery action attributed to this crash, if any.
    pub recover: Option<SimTime>,
    /// Iterations re-executed because of this crash (summed across
    /// ranks) plus task-grained re-executions.
    pub work_replayed: u64,
    /// Total recovery records attributed to this crash.
    pub recovery_actions: u64,
}

impl FaultRecovery {
    /// Nanoseconds from crash to detection, when detected.
    pub fn time_to_detect_ns(&self) -> Option<u64> {
        self.detect
            .map(|d| d.nanos().saturating_sub(self.crash.nanos()))
    }

    /// Nanoseconds from crash to the last attributed recovery action.
    pub fn time_to_recover_ns(&self) -> Option<u64> {
        self.recover
            .map(|r| r.nanos().saturating_sub(self.crash.nanos()))
    }
}

/// All per-crash recovery metrics of one captured run, crashes ordered
/// by `(crash time, node)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// One entry per crashed node.
    pub faults: Vec<FaultRecovery>,
}

impl RecoverySummary {
    /// Whether the run saw any crash.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Fold a capture's fault records into per-crash recovery SLOs.
pub fn recovery_slos(cap: &RunCapture) -> RecoverySummary {
    // Crash instants: several processes may record the same node's
    // death (every server on it, or a back-dating rank 0) — keep the
    // earliest record per node.
    let mut crash_by_node: BTreeMap<u32, SimTime> = BTreeMap::new();
    for e in &cap.events {
        if let EventKind::Fault(FaultEvent::NodeCrash { node }) = &e.kind {
            let t = crash_by_node.entry(node.0).or_insert(e.start);
            if e.start < *t {
                *t = e.start;
            }
        }
    }
    let mut faults: Vec<FaultRecovery> = crash_by_node
        .into_iter()
        .map(|(node, crash)| FaultRecovery {
            node,
            crash,
            detect: None,
            recover: None,
            work_replayed: 0,
            recovery_actions: 0,
        })
        .collect();
    faults.sort_by_key(|f| (f.crash, f.node));

    for e in &cap.events {
        let EventKind::Fault(FaultEvent::Recovery { action, detail, .. }) = &e.kind else {
            continue;
        };
        let t = e.start;
        // Attribute to the most recent crash at or before this record;
        // recovery work before any crash (e.g. a speculative copy under
        // pure stragglers) has no crash to charge.
        let Some(fault) = faults.iter_mut().rev().find(|f| f.crash <= t) else {
            continue;
        };
        if DETECTION_ACTIONS.contains(action) {
            // Detection names the node; re-attribute to it exactly.
            let node = *detail as u32;
            if let Some(f) = faults.iter_mut().find(|f| f.node == node) {
                if f.crash <= t && f.detect.is_none_or(|d| t < d) {
                    f.detect = Some(t);
                }
                f.recovery_actions += 1;
            }
            continue;
        }
        fault.recovery_actions += 1;
        if fault.recover.is_none_or(|r| r < t) {
            fault.recover = Some(t);
        }
        if REPLAY_ACTIONS.contains(action) {
            fault.work_replayed += detail;
        } else if TASK_REPLAY_ACTIONS.contains(action) {
            fault.work_replayed += 1;
        }
    }
    RecoverySummary { faults }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{NodeId, Pid, ProcStats, TraceEvent};

    fn fault_capture() -> RunCapture {
        let at = |t: u64, kind: EventKind| TraceEvent {
            pid: Pid(0),
            start: SimTime(t),
            end: SimTime(t),
            kind,
        };
        let rec = |t: u64, action: &'static str, detail: u64| {
            at(
                t,
                EventKind::Fault(FaultEvent::Recovery {
                    runtime: "mpi",
                    action,
                    detail,
                }),
            )
        };
        RunCapture {
            proc_names: vec!["a".into()],
            proc_nodes: vec![NodeId(0)],
            finishes: vec![SimTime(10_000)],
            stats: vec![ProcStats::default()],
            makespan: SimTime(10_000),
            cluster_nodes: 2,
            dropped_msgs: 0,
            telemetry_interval: None,
            metric_points: Vec::new(),
            spec_commits: 0,
            spec_rollbacks: 0,
            events: vec![
                // Crash back-dated to t=1000; duplicate record later.
                at(
                    1_000,
                    EventKind::Fault(FaultEvent::NodeCrash { node: NodeId(1) }),
                ),
                at(
                    1_400,
                    EventKind::Fault(FaultEvent::NodeCrash { node: NodeId(1) }),
                ),
                rec(1_500, "rank_failure_detected", 1),
                rec(2_000, "checkpoint_restart", 3),
                rec(2_200, "checkpoint_restart", 3),
                rec(2_500, "task_retry", 7),
            ],
        }
    }

    #[test]
    fn slos_fold_detection_recovery_and_replay() {
        let s = recovery_slos(&fault_capture());
        assert_eq!(s.faults.len(), 1);
        let f = &s.faults[0];
        assert_eq!(f.node, 1);
        assert_eq!(f.crash, SimTime(1_000), "earliest crash record wins");
        assert_eq!(f.time_to_detect_ns(), Some(500));
        assert_eq!(f.time_to_recover_ns(), Some(1_500));
        assert_eq!(
            f.work_replayed, 7,
            "3 + 3 iterations replayed across ranks, plus one task retry"
        );
        assert_eq!(f.recovery_actions, 4);
    }

    #[test]
    fn recovery_before_any_crash_is_unattributed() {
        let mut cap = fault_capture();
        cap.events.insert(
            0,
            TraceEvent {
                pid: Pid(0),
                start: SimTime(10),
                end: SimTime(10),
                kind: EventKind::Fault(FaultEvent::Recovery {
                    runtime: "spark",
                    action: "speculative_task",
                    detail: 4,
                }),
            },
        );
        let s = recovery_slos(&cap);
        assert_eq!(s.faults[0].recovery_actions, 4, "pre-crash action ignored");
    }

    #[test]
    fn fault_free_run_has_no_entries() {
        let mut cap = fault_capture();
        cap.events.clear();
        assert!(recovery_slos(&cap).is_empty());
    }
}
