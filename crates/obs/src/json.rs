//! A minimal JSON document model: canonical serialization plus a small
//! recursive-descent parser.
//!
//! The repo vendors no serde, so the report's stable JSON encoding is
//! built by hand. Canonical form: objects keep their (fixed) insertion
//! order, numbers are emitted exactly as their stored decimal text
//! (reports only ever use unsigned integers — nanoseconds and counts —
//! so no float formatting is involved), strings are escaped with
//! [`hpcbd_simnet::json_escape`]. `parse(serialize(v)) == v` and
//! `serialize(parse(s))` is byte-stable, which is what the golden
//! round-trip test asserts.

use hpcbd_simnet::json_escape;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its decimal text so round-trips are exact.
    Num(String),
    /// A string (unescaped content).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved and significant.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an unsigned integer.
    pub fn u64(v: u64) -> JsonValue {
        JsonValue::Num(v.to_string())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize to the canonical compact form.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(s) => out.push_str(s),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(kvs) => {
                out.push('{');
                for (i, (k, v)) in kvs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Intended for validating and round-tripping
    /// the reports this crate itself emits; errors carry a byte offset.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut kvs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(kvs));
            }
            loop {
                skip_ws(b, pos);
                let k = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let v = parse_value(b, pos)?;
                kvs.push((k, v));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(kvs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => {
            let start = *pos;
            if b.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(format!("unexpected character at byte {}", *pos));
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map_err(|e| format!("bad number '{text}': {e}"))?;
            Ok(JsonValue::Num(text.to_string()))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8: copy the full scalar.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_exact() {
        let v = JsonValue::Obj(vec![
            ("schema".into(), JsonValue::str("hpcbd.report.v1")),
            ("n".into(), JsonValue::u64(12345)),
            ("ok".into(), JsonValue::Bool(true)),
            (
                "arr".into(),
                JsonValue::Arr(vec![
                    JsonValue::u64(0),
                    JsonValue::str("a\"b\\c"),
                    JsonValue::Null,
                ]),
            ),
        ]);
        let s = v.serialize();
        let back = JsonValue::parse(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.serialize(), s, "serialize∘parse must be byte-stable");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = JsonValue::parse(r#"{"a": {"b": [1, 2, 3]}}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_u64(), Some(3));
    }
}
