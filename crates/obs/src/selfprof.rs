//! Report-side bridge to the engine's host self-profiler
//! ([`hpcbd_simnet::selfprof`]): folds the counter snapshot plus the
//! capture's speculation totals into the `host_profile` rows attached
//! to the report's `telemetry` section.
//!
//! Everything here is wall-clock-dependent by design — which subsystems
//! the host exercised depends on the execution mode and the scheduler —
//! so the section exists to explain *why a BENCH row moved*, not to be
//! compared across modes. It is emitted only when `HPCBD_SELFPROF` is
//! on, keeping default telemetry byte-identical across
//! `sequential` / `parallel` / `speculative:N`.

use hpcbd_simnet::observe::RunCapture;

/// Build the `host_profile` rows for one captured run, or `None` when
/// the self-profiler is off. Rows are the engine's counter snapshot
/// (in [`hpcbd_simnet::HOST_OP_NAMES`] order, plus `run_wall_ns` and
/// `runs`) followed by the run's cumulative speculation outcomes.
pub fn host_profile(cap: &RunCapture) -> Option<Vec<(String, u64)>> {
    if !hpcbd_simnet::selfprof_enabled() {
        return None;
    }
    let mut rows: Vec<(String, u64)> = hpcbd_simnet::selfprof_snapshot()
        .into_iter()
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    rows.push(("spec_commits".to_string(), cap.spec_commits));
    rows.push(("spec_rollbacks".to_string(), cap.spec_rollbacks));
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{NodeId, SimTime};

    fn cap() -> RunCapture {
        RunCapture {
            proc_names: vec!["a".into()],
            proc_nodes: vec![NodeId(0)],
            finishes: vec![SimTime(1)],
            stats: vec![Default::default()],
            makespan: SimTime(1),
            cluster_nodes: 1,
            dropped_msgs: 0,
            events: Vec::new(),
            telemetry_interval: Some(10),
            metric_points: Vec::new(),
            spec_commits: 3,
            spec_rollbacks: 1,
        }
    }

    #[test]
    fn profile_rows_follow_the_snapshot_plus_spec_totals() {
        // The profiler flag is process-global; drive it explicitly and
        // restore the off state afterwards.
        hpcbd_simnet::set_selfprof(false);
        assert!(host_profile(&cap()).is_none());
        hpcbd_simnet::set_selfprof(true);
        let rows = host_profile(&cap()).expect("profiler on");
        hpcbd_simnet::set_selfprof(false);
        assert_eq!(rows.len(), hpcbd_simnet::HOST_OP_NAMES.len() + 4);
        for (row, &name) in rows.iter().zip(hpcbd_simnet::HOST_OP_NAMES.iter()) {
            assert_eq!(row.0, name);
        }
        assert_eq!(rows[rows.len() - 2], ("spec_commits".to_string(), 3));
        assert_eq!(rows[rows.len() - 1], ("spec_rollbacks".to_string(), 1));
    }
}
