//! Live virtual-time telemetry: a lock-sharded metrics registry, a
//! virtual-time sampler producing windowed time-series, quantile views
//! and threshold-based SLO monitors.
//!
//! The paper's figures — and everything else in this crate — are
//! end-of-run aggregates. A cluster operator instead watches *series*:
//! queue depth over time, per-node device utilization, tail latency per
//! window, SLO attainment. This module builds those series for a
//! captured run, from two inputs:
//!
//! 1. **Explicit metric points** recorded by runtime code through
//!    `ProcCtx::metric_counter` / `metric_gauge` / `metric_observe`
//!    (e.g. checkpoint drain-watermark lag). These arrive in
//!    [`RunCapture::metric_points`] already sorted into the canonical
//!    `(time, name, labels, pid, seq)` order.
//! 2. **Derived series** computed here from the deterministic event
//!    stream: engine runnable count / in-flight compute frontier /
//!    park-wake rates (from process lifecycle and `Recv`/`Compute`
//!    spans), per-node and cluster-wide disk / NFS / NIC busy time
//!    (from device spans), and per-phase task-latency histograms
//!    (from `Phase` spans — the existing `span_close` hook, no new
//!    runtime API).
//!
//! ## Determinism rule (DESIGN.md §15)
//!
//! Live engine state (how deep the ready queue actually was at a wall
//! instant) depends on the execution mode and the host schedule, so it
//! can never be sampled directly without breaking the cross-mode
//! byte-identity contract. Every series here is instead a pure function
//! of virtual-time state: the sorted event stream and the sorted metric
//! points, both of which are already bit-identical across
//! `sequential` / `parallel` / `speculative:N`. Telemetry therefore
//! serializes byte-identically across modes, and is excluded from
//! conformance digests exactly like `spec_commits`.
//!
//! ## Sampler tick semantics
//!
//! Virtual time is split into windows of `interval_ns`; window `w`
//! covers `[w·iv, (w+1)·iv)`, so an update landing exactly on a tick
//! belongs to the window *starting* there. Series are sparse: a window
//! with no activity emits no point (cost is O(updates), not
//! O(windows)). If the requested interval would produce more than
//! [`MAX_WINDOWS`] windows, the sampler coarsens it to the smallest
//! *multiple* of the request that fits — boundaries stay aligned with
//! the requested grid and the result is still deterministic; the
//! requested value is preserved in the report.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use hpcbd_simnet::observe::RunCapture;
use hpcbd_simnet::{EventKind, MetricOp, MetricPoint};

use crate::json::JsonValue;
use crate::report::normalize_label;

/// Upper bound on the number of sampling windows; a tinier requested
/// interval is coarsened (see module docs) so a long-makespan run with
/// `HPCBD_TELEMETRY=1` cannot allocate per-nanosecond series.
pub const MAX_WINDOWS: u64 = 1 << 16;

/// How many [`SloBreach`] records one monitor keeps (the total breach
/// count is always exact; only the per-window detail is capped).
pub const SLO_BREACH_CAP: usize = 32;

/// Number of registry shards. Sharding bounds contention when many
/// threads record concurrently; the sampled output is sorted by
/// `(name, labels)` so the shard layout never shows through.
const SHARDS: usize = 16;

/// What a time-series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone saturating counter; points are `[t, delta, cumulative]`.
    Counter,
    /// Instantaneous value; points are `[t, value]` (carry-forward
    /// between points).
    Gauge,
    /// Fixed-bucket histogram; points are
    /// `[t, count, p50, p99, p999]` over the window's observations.
    Histogram,
}

impl MetricKind {
    /// Stable name used in the JSON encoding.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A fixed 65-bucket power-of-two histogram with rank-based quantiles:
/// bucket 0 holds zeros, bucket `k > 0` holds `[2^(k-1), 2^k)`.
/// Mirrors [`crate::report::Histogram`] but exposes quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist64 {
    counts: [u64; 65],
    total: u64,
}

impl Default for Hist64 {
    fn default() -> Hist64 {
        Hist64 {
            counts: [0; 65],
            total: 0,
        }
    }
}

impl Hist64 {
    /// Count one observation.
    pub fn add(&mut self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.counts[bucket] += 1;
        self.total = self.total.saturating_add(1);
    }

    /// Number of observations counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `qn/qd` quantile as the inclusive upper bound of the bucket
    /// containing rank `ceil(total · qn / qd)` (rank at least 1). An
    /// empty histogram reports 0 — callers emit no point for empty
    /// windows, so the 0 only ever shows up for whole-run summaries of
    /// series that recorded nothing.
    pub fn quantile(&self, qn: u64, qd: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = self.total.saturating_mul(qn).div_ceil(qd);
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match k {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << k) - 1,
                };
            }
        }
        u64::MAX
    }

    /// p50 / p99 / p999 in one call.
    pub fn p50_p99_p999(&self) -> (u64, u64, u64) {
        (
            self.quantile(1, 2),
            self.quantile(99, 100),
            self.quantile(999, 1000),
        )
    }
}

/// Raw updates for one `(name, labels)` series before sampling.
/// Counter updates carry deltas, gauge updates values, histogram
/// updates observations.
#[derive(Debug)]
struct RawSeries {
    kind: MetricKind,
    updates: Vec<(u64, u64)>,
}

/// `(metric name, canonical label string)` — the registry key.
type SeriesKey = (Arc<str>, Arc<str>);
type Shard = BTreeMap<SeriesKey, RawSeries>;

/// The lock-sharded registry: updates hash to one of [`SHARDS`] shards
/// by `(name, labels)`, so concurrent recorders on different metrics
/// rarely contend. [`Registry::sample`] drains every shard and sorts by
/// `(name, labels)`, so shard assignment never affects output.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Mutex<Shard>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
        }
    }

    fn shard(&self, name: &str, labels: &str) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        labels.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn update(
        &self,
        name: impl Into<Arc<str>>,
        labels: impl Into<Arc<str>>,
        kind: MetricKind,
        t_ns: u64,
        v: u64,
    ) {
        let name = name.into();
        let labels = labels.into();
        let mut shard = self.shard(&name, &labels).lock().unwrap();
        let series = shard.entry((name, labels)).or_insert_with(|| RawSeries {
            kind,
            updates: Vec::new(),
        });
        // First registration wins the kind; a mismatched later update is
        // dropped rather than corrupting the series (mixing kinds under
        // one name is a caller bug, not a reason to poison the report).
        if series.kind == kind {
            series.updates.push((t_ns, v));
        }
    }

    /// Add `delta` to the counter series `(name, labels)` at virtual
    /// time `t_ns`. Counters saturate instead of wrapping.
    pub fn counter_add(
        &self,
        name: impl Into<Arc<str>>,
        labels: impl Into<Arc<str>>,
        t_ns: u64,
        delta: u64,
    ) {
        self.update(name, labels, MetricKind::Counter, t_ns, delta);
    }

    /// Set the gauge series `(name, labels)` to `value` at `t_ns`.
    pub fn gauge_set(
        &self,
        name: impl Into<Arc<str>>,
        labels: impl Into<Arc<str>>,
        t_ns: u64,
        value: u64,
    ) {
        self.update(name, labels, MetricKind::Gauge, t_ns, value);
    }

    /// Record one histogram observation into `(name, labels)` at `t_ns`.
    pub fn observe(
        &self,
        name: impl Into<Arc<str>>,
        labels: impl Into<Arc<str>>,
        t_ns: u64,
        value: u64,
    ) {
        self.update(name, labels, MetricKind::Histogram, t_ns, value);
    }

    /// Apply one explicit [`MetricPoint`] recorded by a process.
    pub fn record(&self, p: &MetricPoint) {
        let t = p.time.nanos();
        match p.op {
            MetricOp::CounterAdd(v) => self.counter_add(p.name.clone(), p.labels.clone(), t, v),
            MetricOp::GaugeSet(v) => self.gauge_set(p.name.clone(), p.labels.clone(), t, v),
            MetricOp::Observe(v) => self.observe(p.name.clone(), p.labels.clone(), t, v),
        }
    }

    /// Drain the registry into sampled time-series, quantile summaries
    /// and SLO outcomes. `interval_ns` must already be effective (see
    /// [`effective_interval`]); zero is treated as 1.
    pub fn sample(self, interval_ns: u64, makespan_ns: u64) -> Telemetry {
        let iv = interval_ns.max(1);
        let windows = makespan_ns / iv + 1;
        let mut all: Vec<(SeriesKey, RawSeries)> = Vec::new();
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            all.extend(std::mem::take(&mut *s));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));

        let mut series = Vec::with_capacity(all.len());
        let mut quantiles = Vec::new();
        let mut slo = Vec::new();
        for ((name, labels), mut raw) in all {
            // Stable: preserves the canonical (name, labels, pid, seq)
            // tie-break order the caller fed same-time updates in.
            raw.updates.sort_by_key(|&(t, _)| t);
            let points = match raw.kind {
                MetricKind::Counter => {
                    let mut pts: Vec<[u64; 3]> = Vec::new();
                    let mut cum = 0u64;
                    for &(t, delta) in &raw.updates {
                        let w = (t / iv) * iv;
                        cum = cum.saturating_add(delta);
                        match pts.last_mut() {
                            Some(last) if last[0] == w => {
                                last[1] = last[1].saturating_add(delta);
                                last[2] = cum;
                            }
                            _ => pts.push([w, delta, cum]),
                        }
                    }
                    Points::Counter(pts)
                }
                MetricKind::Gauge => {
                    let mut pts: Vec<[u64; 2]> = Vec::new();
                    for &(t, value) in &raw.updates {
                        let w = (t / iv) * iv;
                        match pts.last_mut() {
                            Some(last) if last[0] == w => last[1] = value,
                            _ => pts.push([w, value]),
                        }
                    }
                    Points::Gauge(pts)
                }
                MetricKind::Histogram => {
                    let mut pts: Vec<[u64; 5]> = Vec::new();
                    let mut whole = Hist64::default();
                    let mut win = Hist64::default();
                    let mut win_start: Option<u64> = None;
                    let flush = |win: &mut Hist64, start: Option<u64>, pts: &mut Vec<[u64; 5]>| {
                        if let Some(s) = start {
                            if win.total() > 0 {
                                let (p50, p99, p999) = win.p50_p99_p999();
                                pts.push([s, win.total(), p50, p99, p999]);
                            }
                        }
                        *win = Hist64::default();
                    };
                    for &(t, value) in &raw.updates {
                        let w = (t / iv) * iv;
                        if win_start != Some(w) {
                            flush(&mut win, win_start, &mut pts);
                            win_start = Some(w);
                        }
                        win.add(value);
                        whole.add(value);
                    }
                    flush(&mut win, win_start, &mut pts);

                    let (p50, p99, p999) = whole.p50_p99_p999();
                    quantiles.push(QuantileSummary {
                        name: name.clone(),
                        labels: labels.clone(),
                        count: whole.total(),
                        p50,
                        p99,
                        p999,
                    });
                    // Default SLO monitor: windowed p99 must stay within
                    // 4× the whole-run p50 (floor 1 so an all-zero
                    // series still has a meaningful threshold).
                    let monitor = SloMonitor {
                        metric: name.clone(),
                        labels: labels.clone(),
                        threshold: (p50.saturating_mul(4)).max(1),
                    };
                    slo.push(evaluate_slo(monitor, &pts));
                    Points::Histogram(pts)
                }
            };
            series.push(TimeSeries {
                name,
                labels,
                kind: raw.kind,
                points,
            });
        }
        Telemetry {
            interval_ns: iv,
            requested_interval_ns: iv,
            windows,
            series,
            quantiles,
            slo,
            host_profile: None,
        }
    }
}

/// Coarsen a requested sampling interval so `makespan / interval`
/// stays within [`MAX_WINDOWS`]: the result is the smallest *multiple*
/// of the request that fits (boundaries stay aligned with the
/// requested grid). Idempotent.
pub fn effective_interval(requested_ns: u64, makespan_ns: u64) -> u64 {
    let iv = requested_ns.max(1);
    let windows = makespan_ns / iv + 1;
    if windows <= MAX_WINDOWS {
        return iv;
    }
    let factor = windows.div_ceil(MAX_WINDOWS);
    iv.saturating_mul(factor)
}

/// Sampled points of one series, laid out per [`MetricKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Points {
    /// `[window_start_ns, delta, cumulative]` per active window.
    Counter(Vec<[u64; 3]>),
    /// `[window_start_ns, last_value]` per active window.
    Gauge(Vec<[u64; 2]>),
    /// `[window_start_ns, count, p50, p99, p999]` per active window.
    Histogram(Vec<[u64; 5]>),
}

impl Points {
    /// Number of sampled (active-window) points.
    pub fn len(&self) -> usize {
        match self {
            Points::Counter(v) => v.len(),
            Points::Gauge(v) => v.len(),
            Points::Histogram(v) => v.len(),
        }
    }

    /// Whether no window was active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One sampled time-series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    /// Metric name (e.g. `cluster.disk_busy_ns`).
    pub name: Arc<str>,
    /// Canonical label string (`key=value`, comma-separated, or empty).
    pub labels: Arc<str>,
    /// What the series measures.
    pub kind: MetricKind,
    /// Sparse per-window points.
    pub points: Points,
}

/// Whole-run quantiles for one histogram series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSummary {
    /// Metric name.
    pub name: Arc<str>,
    /// Label string.
    pub labels: Arc<str>,
    /// Observations over the whole run.
    pub count: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// A threshold monitor over one histogram series' windowed p99.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloMonitor {
    /// Monitored metric name.
    pub metric: Arc<str>,
    /// Label string.
    pub labels: Arc<str>,
    /// Windowed p99 above this value is a breach.
    pub threshold: u64,
}

/// One window whose p99 exceeded the monitor's threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloBreach {
    /// Window index (`t_ns / interval_ns`).
    pub window: u64,
    /// Window start, virtual ns.
    pub t_ns: u64,
    /// The offending windowed p99.
    pub observed_p99: u64,
    /// The monitor threshold at evaluation time.
    pub threshold: u64,
}

/// Evaluation result of one [`SloMonitor`] over a sampled series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloOutcome {
    /// The monitor that produced this outcome.
    pub monitor: SloMonitor,
    /// Windows that had at least one observation.
    pub windows_evaluated: u64,
    /// Windows whose p99 exceeded the threshold (exact, even when the
    /// breach detail list is capped).
    pub windows_breached: u64,
    /// `(evaluated − breached) · 1e6 / evaluated`; 1 000 000 when no
    /// window had samples.
    pub attainment_ppm: u64,
    /// Per-breach detail, capped at [`SLO_BREACH_CAP`].
    pub breaches: Vec<SloBreach>,
}

fn evaluate_slo(monitor: SloMonitor, hist_points: &[[u64; 5]]) -> SloOutcome {
    let mut breached = 0u64;
    let mut breaches = Vec::new();
    for p in hist_points {
        let [t, _count, _p50, p99, _p999] = *p;
        if p99 > monitor.threshold {
            breached += 1;
            if breaches.len() < SLO_BREACH_CAP {
                breaches.push(SloBreach {
                    window: 0, // fixed up below once we know the interval
                    t_ns: t,
                    observed_p99: p99,
                    threshold: monitor.threshold,
                });
            }
        }
    }
    let evaluated = hist_points.len() as u64;
    let attainment_ppm = (evaluated - breached)
        .saturating_mul(1_000_000)
        .checked_div(evaluated)
        .unwrap_or(1_000_000);
    SloOutcome {
        monitor,
        windows_evaluated: evaluated,
        windows_breached: breached,
        attainment_ppm,
        breaches,
    }
}

/// The full sampled telemetry of one run: the report's optional
/// `telemetry` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Telemetry {
    /// Effective sampling interval (after coarsening).
    pub interval_ns: u64,
    /// The interval that was asked for (differs from `interval_ns`
    /// only when coarsened; see [`effective_interval`]).
    pub requested_interval_ns: u64,
    /// Number of window slots spanned by `[0, makespan]`.
    pub windows: u64,
    /// Sampled series, sorted by `(name, labels)`.
    pub series: Vec<TimeSeries>,
    /// Whole-run quantiles, one per histogram series.
    pub quantiles: Vec<QuantileSummary>,
    /// SLO outcomes, one per default monitor.
    pub slo: Vec<SloOutcome>,
    /// Host self-profiler rows (`(name, count)`), present only when
    /// `HPCBD_SELFPROF` is on. Wall-clock-dependent by design — never
    /// part of cross-mode comparisons (see [`crate::selfprof`]).
    pub host_profile: Option<Vec<(String, u64)>>,
}

impl Telemetry {
    /// Encode as the report's `telemetry` JSON object. Deterministic:
    /// fixed key order, integers only, series pre-sorted.
    pub fn to_json_value(&self) -> JsonValue {
        let series = JsonValue::Arr(
            self.series
                .iter()
                .map(|s| {
                    let points = match &s.points {
                        Points::Counter(v) => JsonValue::Arr(
                            v.iter()
                                .map(|p| {
                                    JsonValue::Arr(p.iter().map(|&x| JsonValue::u64(x)).collect())
                                })
                                .collect(),
                        ),
                        Points::Gauge(v) => JsonValue::Arr(
                            v.iter()
                                .map(|p| {
                                    JsonValue::Arr(p.iter().map(|&x| JsonValue::u64(x)).collect())
                                })
                                .collect(),
                        ),
                        Points::Histogram(v) => JsonValue::Arr(
                            v.iter()
                                .map(|p| {
                                    JsonValue::Arr(p.iter().map(|&x| JsonValue::u64(x)).collect())
                                })
                                .collect(),
                        ),
                    };
                    JsonValue::Obj(vec![
                        ("name".into(), JsonValue::str(s.name.as_ref())),
                        ("labels".into(), JsonValue::str(s.labels.as_ref())),
                        ("kind".into(), JsonValue::str(s.kind.name())),
                        ("points".into(), points),
                    ])
                })
                .collect(),
        );
        let quantiles = JsonValue::Arr(
            self.quantiles
                .iter()
                .map(|q| {
                    JsonValue::Obj(vec![
                        ("name".into(), JsonValue::str(q.name.as_ref())),
                        ("labels".into(), JsonValue::str(q.labels.as_ref())),
                        ("count".into(), JsonValue::u64(q.count)),
                        ("p50".into(), JsonValue::u64(q.p50)),
                        ("p99".into(), JsonValue::u64(q.p99)),
                        ("p999".into(), JsonValue::u64(q.p999)),
                    ])
                })
                .collect(),
        );
        let slo = JsonValue::Arr(
            self.slo
                .iter()
                .map(|o| {
                    let breaches = JsonValue::Arr(
                        o.breaches
                            .iter()
                            .map(|b| {
                                JsonValue::Obj(vec![
                                    ("window".into(), JsonValue::u64(b.window)),
                                    ("t_ns".into(), JsonValue::u64(b.t_ns)),
                                    ("observed_p99".into(), JsonValue::u64(b.observed_p99)),
                                    ("threshold".into(), JsonValue::u64(b.threshold)),
                                ])
                            })
                            .collect(),
                    );
                    JsonValue::Obj(vec![
                        ("metric".into(), JsonValue::str(o.monitor.metric.as_ref())),
                        ("labels".into(), JsonValue::str(o.monitor.labels.as_ref())),
                        ("threshold".into(), JsonValue::u64(o.monitor.threshold)),
                        (
                            "windows_evaluated".into(),
                            JsonValue::u64(o.windows_evaluated),
                        ),
                        (
                            "windows_breached".into(),
                            JsonValue::u64(o.windows_breached),
                        ),
                        ("attainment_ppm".into(), JsonValue::u64(o.attainment_ppm)),
                        ("breaches".into(), breaches),
                    ])
                })
                .collect(),
        );
        let mut kvs = vec![("interval_ns".into(), JsonValue::u64(self.interval_ns))];
        if self.requested_interval_ns != self.interval_ns {
            kvs.push((
                "requested_interval_ns".into(),
                JsonValue::u64(self.requested_interval_ns),
            ));
        }
        kvs.push(("windows".into(), JsonValue::u64(self.windows)));
        kvs.push(("series".into(), series));
        kvs.push(("quantiles".into(), quantiles));
        kvs.push(("slo".into(), slo));
        if let Some(hp) = &self.host_profile {
            kvs.push((
                "host_profile".into(),
                JsonValue::Obj(
                    hp.iter()
                        .map(|(name, v)| (name.clone(), JsonValue::u64(*v)))
                        .collect(),
                ),
            ));
        }
        JsonValue::Obj(kvs)
    }
}

/// Per-node device series are emitted only up to this cluster size;
/// beyond it the per-node label cardinality would dwarf the report, so
/// only the cluster-wide aggregates remain.
pub const MAX_PER_NODE_SERIES: usize = 32;

/// Build the sampled telemetry for one captured run, or `None` when
/// the run was captured with telemetry off.
pub fn collect_telemetry(cap: &RunCapture) -> Option<Telemetry> {
    let requested = cap.telemetry_interval?;
    let makespan = cap.makespan.nanos();
    let iv = effective_interval(requested, makespan);
    let reg = Registry::new();

    for p in &cap.metric_points {
        reg.record(p);
    }
    derive_engine_series(&reg, cap);
    derive_device_series(&reg, cap, iv);
    derive_phase_series(&reg, cap);

    let mut t = reg.sample(iv, makespan);
    t.requested_interval_ns = requested.max(1);
    // Breach window indices are interval-relative; fill them in now.
    for o in &mut t.slo {
        for b in &mut o.breaches {
            b.window = b.t_ns / iv;
        }
    }
    Some(t)
}

/// Engine-level series, derived deterministically from the event
/// stream: `engine.runnable` (processes not finished and not blocked in
/// a `Recv`), `engine.frontier` (concurrently in-flight `Compute`
/// spans), `engine.parks` / `engine.wakes` (one park per blocking
/// receive, one wake when it completes).
fn derive_engine_series(reg: &Registry, cap: &RunCapture) {
    // Signed deltas keyed by time; coalesced so one gauge point is
    // emitted per distinct transition instant.
    let mut runnable: BTreeMap<u64, i64> = BTreeMap::new();
    let mut frontier: BTreeMap<u64, i64> = BTreeMap::new();
    for f in &cap.finishes {
        *runnable.entry(0).or_default() += 1;
        *runnable.entry(f.nanos()).or_default() -= 1;
    }
    for e in &cap.events {
        match &e.kind {
            EventKind::Recv { .. } => {
                *runnable.entry(e.start.nanos()).or_default() -= 1;
                *runnable.entry(e.end.nanos()).or_default() += 1;
                reg.counter_add("engine.parks", "", e.start.nanos(), 1);
                reg.counter_add("engine.wakes", "", e.end.nanos(), 1);
            }
            EventKind::Compute => {
                *frontier.entry(e.start.nanos()).or_default() += 1;
                *frontier.entry(e.end.nanos()).or_default() -= 1;
            }
            _ => {}
        }
    }
    let mut level = 0i64;
    for (t, d) in runnable {
        level += d;
        reg.gauge_set("engine.runnable", "", t, level.max(0) as u64);
    }
    level = 0;
    for (t, d) in frontier {
        level += d;
        reg.gauge_set("engine.frontier", "", t, level.max(0) as u64);
    }
}

/// Device busy-time series from device spans: cluster-wide
/// `cluster.{disk,nfs,nic}_busy_ns` always, per-node
/// `node.{disk,nfs,nic}_busy_ns{node=K}` when the topology has at most
/// [`MAX_PER_NODE_SERIES`] nodes. A span's duration is split across the
/// windows it overlaps. `Recv` is deliberately *not* NIC busy time —
/// its span includes matching wait.
fn derive_device_series(reg: &Registry, cap: &RunCapture, iv: u64) {
    let per_node = cap.cluster_nodes <= MAX_PER_NODE_SERIES;
    let node_labels: Vec<Arc<str>> = (0..cap.cluster_nodes as u64)
        .map(|n| Arc::from(format!("node={n}").as_str()))
        .collect();
    for e in &cap.events {
        let device = match &e.kind {
            EventKind::DiskRead { .. } | EventKind::DiskWrite { .. } => "disk",
            EventKind::Nfs { .. } => "nfs",
            EventKind::Send { .. } | EventKind::OneSided { .. } => "nic",
            _ => continue,
        };
        let (start, end) = (e.start.nanos(), e.end.nanos());
        if end <= start {
            continue;
        }
        let cluster_name: &'static str = match device {
            "disk" => "cluster.disk_busy_ns",
            "nfs" => "cluster.nfs_busy_ns",
            _ => "cluster.nic_busy_ns",
        };
        let node_name: &'static str = match device {
            "disk" => "node.disk_busy_ns",
            "nfs" => "node.nfs_busy_ns",
            _ => "node.nic_busy_ns",
        };
        let node = cap.proc_nodes.get(e.pid.index()).map(|n| n.index());
        for w in (start / iv)..=((end - 1) / iv) {
            let lo = start.max(w * iv);
            let hi = end.min((w + 1).saturating_mul(iv));
            let busy = hi.saturating_sub(lo);
            if busy == 0 {
                continue;
            }
            reg.counter_add(cluster_name, "", w * iv, busy);
            if per_node {
                if let Some(n) = node {
                    if let Some(label) = node_labels.get(n) {
                        reg.counter_add(node_name, label.clone(), w * iv, busy);
                    }
                }
            }
        }
    }
}

/// Per-phase task-latency histograms from `Phase` spans (the existing
/// `span_close` hook): series `phase.span_ns{phase=<normalized>}`,
/// observed at the span's close time.
fn derive_phase_series(reg: &Registry, cap: &RunCapture) {
    let mut label_cache: BTreeMap<&str, Arc<str>> = BTreeMap::new();
    for e in &cap.events {
        if let EventKind::Phase { label, .. } = &e.kind {
            let labels = label_cache
                .entry(label.as_ref())
                .or_insert_with(|| Arc::from(format!("phase={}", normalize_label(label)).as_str()))
                .clone();
            reg.observe(
                "phase.span_ns",
                labels,
                e.end.nanos(),
                e.end.nanos().saturating_sub(e.start.nanos()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{NodeId, Pid, ProcStats, SimTime, TraceEvent};

    fn ev(pid: u32, start: u64, end: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            pid: Pid(pid),
            start: SimTime(start),
            end: SimTime(end),
            kind,
        }
    }

    fn cap_with(events: Vec<TraceEvent>, interval: Option<u64>) -> RunCapture {
        RunCapture {
            proc_names: vec!["a".into(), "b".into()],
            proc_nodes: vec![NodeId(0), NodeId(1)],
            finishes: vec![SimTime(90), SimTime(100)],
            stats: vec![ProcStats::default(), ProcStats::default()],
            makespan: SimTime(100),
            cluster_nodes: 2,
            dropped_msgs: 0,
            events,
            telemetry_interval: interval,
            metric_points: Vec::new(),
            spec_commits: 0,
            spec_rollbacks: 0,
        }
    }

    #[test]
    fn quantiles_on_single_bucket_histograms_collapse() {
        let mut h = Hist64::default();
        for _ in 0..100 {
            h.add(700); // bucket [512, 1024) → upper bound 1023
        }
        assert_eq!(h.p50_p99_p999(), (1023, 1023, 1023));
        let mut z = Hist64::default();
        z.add(0);
        assert_eq!(z.p50_p99_p999(), (0, 0, 0));
    }

    #[test]
    fn quantiles_on_empty_histogram_are_zero() {
        let h = Hist64::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.p50_p99_p999(), (0, 0, 0));
    }

    #[test]
    fn p999_needs_the_tail_bucket_only_past_its_rank() {
        // One outlier in 1000: its rank is 1000 but the p999 rank is
        // ceil(1000·999/1000) = 999, still in the fast bucket — a
        // single 1/1000 outlier does not move p999.
        let mut h = Hist64::default();
        for _ in 0..999 {
            h.add(100); // bucket [64, 128)
        }
        h.add(1 << 40);
        let (p50, p99, p999) = h.p50_p99_p999();
        assert_eq!(p50, 127);
        assert_eq!(p99, 127);
        assert_eq!(p999, 127);
        // A second outlier pushes the p999 rank past the fast bucket.
        h.add(1 << 40);
        assert_eq!(h.quantile(999, 1000), (1u64 << 41) - 1);
    }

    #[test]
    fn sparse_windows_emit_no_points() {
        // Observations in windows 0 and 9 only; nothing in between.
        let reg = Registry::new();
        reg.observe("lat", "", 5, 10);
        reg.observe("lat", "", 95, 20);
        let t = reg.sample(10, 100);
        assert_eq!(t.windows, 11);
        let s = &t.series[0];
        match &s.points {
            Points::Histogram(p) => {
                assert_eq!(p.len(), 2, "empty windows must not emit points");
                assert_eq!(p[0][0], 0);
                assert_eq!(p[1][0], 90);
                // A one-sample window's p50 == p99 == p999.
                assert_eq!(p[0][2], p[0][4]);
            }
            other => panic!("expected histogram points, got {other:?}"),
        }
        // SLO evaluation counts only sampled windows.
        assert_eq!(t.slo[0].windows_evaluated, 2);
    }

    #[test]
    fn boundary_update_belongs_to_the_window_starting_there() {
        let reg = Registry::new();
        reg.counter_add("c", "", 10, 1); // exactly on the tick
        reg.counter_add("c", "", 9, 1); // last ns of window 0
        let t = reg.sample(10, 20);
        match &t.series[0].points {
            Points::Counter(p) => {
                assert_eq!(p.as_slice(), &[[0, 1, 1], [10, 1, 2]]);
            }
            other => panic!("expected counter points, got {other:?}"),
        }
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let reg = Registry::new();
        reg.counter_add("c", "", 0, u64::MAX - 1);
        reg.counter_add("c", "", 1, 5);
        reg.counter_add("c", "", 2, 5);
        let t = reg.sample(10, 10);
        match &t.series[0].points {
            Points::Counter(p) => {
                assert_eq!(p.len(), 1);
                // Window delta and cumulative both saturate at u64::MAX.
                assert_eq!(p[0][1], u64::MAX);
                assert_eq!(p[0][2], u64::MAX);
            }
            other => panic!("expected counter points, got {other:?}"),
        }
    }

    #[test]
    fn gauge_takes_the_last_value_in_a_window() {
        let reg = Registry::new();
        reg.gauge_set("g", "", 1, 10);
        reg.gauge_set("g", "", 9, 30);
        reg.gauge_set("g", "", 15, 7);
        let t = reg.sample(10, 20);
        match &t.series[0].points {
            Points::Gauge(p) => assert_eq!(p.as_slice(), &[[0, 30], [10, 7]]),
            other => panic!("expected gauge points, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_kind_updates_are_dropped() {
        let reg = Registry::new();
        reg.counter_add("m", "", 0, 1);
        reg.gauge_set("m", "", 5, 99); // wrong kind: ignored
        let t = reg.sample(10, 10);
        assert_eq!(t.series.len(), 1);
        assert_eq!(t.series[0].kind, MetricKind::Counter);
        assert_eq!(t.series[0].points.len(), 1);
    }

    #[test]
    fn series_sort_by_name_then_labels_across_shards() {
        let reg = Registry::new();
        // Insertion order deliberately scrambled; shard assignment is an
        // implementation detail that must not show in the output order.
        reg.counter_add("z", "", 0, 1);
        reg.counter_add("a", "x=2", 0, 1);
        reg.counter_add("a", "x=1", 0, 1);
        reg.counter_add("m", "", 0, 1);
        let t = reg.sample(10, 10);
        let order: Vec<(String, String)> = t
            .series
            .iter()
            .map(|s| (s.name.to_string(), s.labels.to_string()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a".into(), "x=1".into()),
                ("a".into(), "x=2".into()),
                ("m".into(), "".into()),
                ("z".into(), "".into()),
            ]
        );
    }

    #[test]
    fn effective_interval_coarsens_to_an_aligned_multiple() {
        assert_eq!(effective_interval(100, 1_000), 100);
        assert_eq!(effective_interval(0, 1_000), 1);
        // 3 ns over a long makespan would be billions of windows;
        // the result is a multiple of the request and fits the cap.
        let eff = effective_interval(3, 10_000_000_000);
        assert_eq!(eff % 3, 0);
        assert!(10_000_000_000 / eff < MAX_WINDOWS);
        // Idempotent.
        assert_eq!(effective_interval(eff, 10_000_000_000), eff);
    }

    #[test]
    fn slo_monitor_flags_tail_windows() {
        let reg = Registry::new();
        // 30 fast observations across three windows, then one window
        // whose p99 blows past 4× the whole-run p50.
        for w in 0..3u64 {
            for i in 0..10u64 {
                reg.observe("lat", "", w * 10 + i, 100);
            }
        }
        reg.observe("lat", "", 35, 1 << 30);
        let t = reg.sample(10, 40);
        let o = &t.slo[0];
        assert_eq!(o.windows_evaluated, 4);
        assert_eq!(o.windows_breached, 1);
        assert_eq!(o.attainment_ppm, 750_000);
        assert_eq!(o.breaches.len(), 1);
        assert_eq!(o.breaches[0].t_ns, 30);
        assert!(o.breaches[0].observed_p99 > o.breaches[0].threshold);
    }

    #[test]
    fn slo_attainment_is_full_when_nothing_was_sampled() {
        let o = evaluate_slo(
            SloMonitor {
                metric: "m".into(),
                labels: "".into(),
                threshold: 1,
            },
            &[],
        );
        assert_eq!(o.windows_evaluated, 0);
        assert_eq!(o.attainment_ppm, 1_000_000);
        assert!(o.breaches.is_empty());
    }

    #[test]
    fn collect_returns_none_when_telemetry_is_off() {
        let cap = cap_with(vec![ev(0, 0, 50, EventKind::Compute)], None);
        assert!(collect_telemetry(&cap).is_none());
    }

    #[test]
    fn derived_series_cover_engine_devices_and_phases() {
        let events = vec![
            ev(
                0,
                0,
                50,
                EventKind::Phase {
                    label: "job/iter/3".into(),
                    depth: 0,
                },
            ),
            ev(0, 0, 40, EventKind::Compute),
            ev(
                0,
                40,
                50,
                EventKind::Send {
                    dst: Pid(1),
                    bytes: 1024,
                },
            ),
            ev(
                1,
                0,
                80,
                EventKind::Recv {
                    src: Pid(0),
                    bytes: 1024,
                },
            ),
            ev(1, 80, 100, EventKind::DiskWrite { bytes: 4096 }),
        ];
        let cap = cap_with(events, Some(10));
        let t = collect_telemetry(&cap).expect("telemetry on");
        let names: Vec<&str> = t.series.iter().map(|s| s.name.as_ref()).collect();
        for expected in [
            "cluster.disk_busy_ns",
            "cluster.nic_busy_ns",
            "engine.frontier",
            "engine.parks",
            "engine.runnable",
            "engine.wakes",
            "node.disk_busy_ns",
            "node.nic_busy_ns",
            "phase.span_ns",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        // The disk span [80, 100) splits evenly across two windows and
        // lands on node 1 (pid 1's node).
        let disk = t
            .series
            .iter()
            .find(|s| s.name.as_ref() == "node.disk_busy_ns")
            .unwrap();
        assert_eq!(disk.labels.as_ref(), "node=1");
        match &disk.points {
            Points::Counter(p) => assert_eq!(p.as_slice(), &[[80, 10, 10], [90, 10, 20]]),
            other => panic!("expected counter points, got {other:?}"),
        }
        // Phase labels normalize their numeric segments.
        let phase = t
            .series
            .iter()
            .find(|s| s.name.as_ref() == "phase.span_ns")
            .unwrap();
        assert_eq!(phase.labels.as_ref(), "phase=job/iter/*");
        // One park (the recv) and one wake.
        let parks = t
            .series
            .iter()
            .find(|s| s.name.as_ref() == "engine.parks")
            .unwrap();
        match &parks.points {
            Points::Counter(p) => assert_eq!(p.as_slice(), &[[0, 1, 1]]),
            other => panic!("expected counter points, got {other:?}"),
        }
        // Whole-run quantiles exist for the phase histogram.
        assert!(t
            .quantiles
            .iter()
            .any(|q| q.name.as_ref() == "phase.span_ns" && q.count == 1));
        // Runnable drops to 1 while pid 1 blocks in the recv and both
        // series stay non-negative.
        let runnable = t
            .series
            .iter()
            .find(|s| s.name.as_ref() == "engine.runnable")
            .unwrap();
        match &runnable.points {
            Points::Gauge(p) => {
                assert_eq!(p.first(), Some(&[0, 1]));
                assert!(p.iter().all(|g| g[1] <= 2));
            }
            other => panic!("expected gauge points, got {other:?}"),
        }
    }

    #[test]
    fn explicit_metric_points_flow_into_series() {
        let mut cap = cap_with(Vec::new(), Some(10));
        cap.metric_points = vec![
            MetricPoint {
                time: SimTime(5),
                pid: Pid(0),
                seq: 0,
                name: "ckpt.drain_lag_ns".into(),
                labels: "".into(),
                op: MetricOp::Observe(5_000),
            },
            MetricPoint {
                time: SimTime(15),
                pid: Pid(0),
                seq: 1,
                name: "ckpt.drain_lag_ns".into(),
                labels: "".into(),
                op: MetricOp::Observe(7_000),
            },
        ];
        let t = collect_telemetry(&cap).unwrap();
        let s = t
            .series
            .iter()
            .find(|s| s.name.as_ref() == "ckpt.drain_lag_ns")
            .expect("explicit series present");
        assert_eq!(s.kind, MetricKind::Histogram);
        assert_eq!(s.points.len(), 2);
        assert!(t
            .quantiles
            .iter()
            .any(|q| q.name.as_ref() == "ckpt.drain_lag_ns" && q.count == 2));
    }

    #[test]
    fn telemetry_json_is_deterministic_and_integer_only() {
        let events = vec![
            ev(0, 0, 40, EventKind::Compute),
            ev(1, 10, 30, EventKind::DiskRead { bytes: 64 }),
        ];
        let a = collect_telemetry(&cap_with(events.clone(), Some(10)))
            .unwrap()
            .to_json_value()
            .serialize();
        let b = collect_telemetry(&cap_with(events, Some(10)))
            .unwrap()
            .to_json_value()
            .serialize();
        assert_eq!(a, b);
        let v = JsonValue::parse(&a).expect("telemetry JSON parses");
        for key in ["interval_ns", "windows", "series", "quantiles", "slo"] {
            assert!(v.get(key).is_some(), "missing {key}: {a}");
        }
        // Off by default: no host_profile key without HPCBD_SELFPROF.
        assert!(v.get("host_profile").is_none());
        // Integers only: a '.' may appear in metric names but never
        // between digits (no float literals).
        let bytes = a.as_bytes();
        for i in 1..bytes.len() - 1 {
            if bytes[i] == b'.' {
                assert!(
                    !(bytes[i - 1].is_ascii_digit() && bytes[i + 1].is_ascii_digit()),
                    "float literal in JSON: {a}"
                );
            }
        }
    }

    #[test]
    fn host_profile_serializes_in_row_order_when_present() {
        let mut t = collect_telemetry(&cap_with(Vec::new(), Some(10))).unwrap();
        t.host_profile = Some(vec![("queue_push".into(), 42), ("runs".into(), 1)]);
        let s = t.to_json_value().serialize();
        let v = JsonValue::parse(&s).unwrap();
        let hp = v.get("host_profile").expect("host_profile present");
        assert_eq!(hp.get("queue_push"), Some(&JsonValue::u64(42)));
        assert_eq!(hp.get("runs"), Some(&JsonValue::u64(1)));
    }
}
