//! The unified run report: deterministic metrics, per-phase breakdown
//! and critical-path summary over one or more captured runs.
//!
//! A bench bin typically performs a sweep (several node counts ×
//! several runtimes), each data point being one `Sim` run; the report
//! carries one [`RunSection`] per captured run, in capture order.
//!
//! Determinism rules (DESIGN.md §10): every number is an integer
//! (nanoseconds or a count) derived from the deterministic event order
//! and per-process statistics; aggregation uses `BTreeMap`s; ordering
//! ties break on labels. The serialized report is therefore
//! byte-identical across runs and across execution modes.

use std::collections::BTreeMap;

use hpcbd_simnet::observe::RunCapture;
use hpcbd_simnet::{EventKind, ProcStats, SimTime};

use crate::causal::{match_events, CausalGraph};
use crate::critical::{critical_path, Category, CriticalPath};
use crate::json::JsonValue;
use crate::metrics::{collect_telemetry, Telemetry};
use crate::recovery::{recovery_slos, RecoverySummary};

/// How many top critical-path contributors each section keeps.
pub const TOP_K: usize = 8;

/// A fixed-bucket power-of-two histogram: bucket 0 holds zeros, bucket
/// `k > 0` holds values in `[2^(k-1), 2^k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { counts: [0; 65] }
    }
}

impl Histogram {
    /// Count one value.
    pub fn add(&mut self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.counts[bucket] += 1;
    }

    /// Total number of counted values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sparse `[[bucket_lower_bound, count], ...]` encoding.
    pub fn to_json(&self) -> JsonValue {
        let items = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| {
                let lower = if k == 0 { 0u64 } else { 1u64 << (k - 1) };
                JsonValue::Arr(vec![JsonValue::u64(lower), JsonValue::u64(c)])
            })
            .collect();
        JsonValue::Arr(items)
    }
}

/// Aggregated view of one (normalized) phase label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Normalized label: numeric path segments become `*`, so
    /// `pagerank/iter/3/shuffle` aggregates as `pagerank/iter/*/shuffle`.
    pub label: String,
    /// Number of span instances that normalized to this label.
    pub spans: u64,
    /// Summed wall (virtual) duration of those spans, across processes.
    pub span_ns: u64,
    /// Critical-path nanoseconds attributed to this phase, per
    /// [`Category`] (indexed by [`Category::index`]).
    pub crit: [u64; 5],
}

impl PhaseRow {
    /// Total critical-path nanoseconds attributed to this phase.
    pub fn crit_total(&self) -> u64 {
        self.crit.iter().sum()
    }
}

/// Report section for one captured simulation run.
#[derive(Debug)]
pub struct RunSection {
    /// Position of the run within the capture window.
    pub index: usize,
    /// Number of simulated processes.
    pub procs: usize,
    /// Number of nodes in the topology.
    pub cluster_nodes: usize,
    /// The run's makespan.
    pub makespan: SimTime,
    /// Messages delivered to finished processes.
    pub dropped_msgs: u64,
    /// Statistics summed over all processes.
    pub totals: ProcStats,
    /// Per-phase breakdown; rows ordered by critical-path share
    /// (descending), label ascending on ties. The rows' `crit` arrays
    /// sum to the makespan exactly.
    pub phases: Vec<PhaseRow>,
    /// The critical path.
    pub crit: CriticalPath,
    /// Top-K `(exact phase label, category, nanoseconds)` critical-path
    /// contributors.
    pub top: Vec<(String, Category, u64)>,
    /// Histograms: message sizes (bytes), phase span durations (ns),
    /// receive span durations (ns).
    pub hist_msg_bytes: Histogram,
    /// Phase span duration histogram (ns).
    pub hist_phase_ns: Histogram,
    /// Receive span (blocking + endpoint) duration histogram (ns).
    pub hist_recv_ns: Histogram,
    /// Matched send→recv edges.
    pub causal_edges: u64,
    /// Receives with no causally valid matched send.
    pub unmatched_recvs: u64,
    /// Per-crash recovery SLOs; empty for fault-free runs.
    pub recovery: RecoverySummary,
    /// Sampled live telemetry; `None` unless the run was captured with
    /// a telemetry interval set (see [`crate::metrics`]). Omitting the
    /// key keeps telemetry-off reports byte-identical to old goldens.
    pub telemetry: Option<Telemetry>,
}

/// Replace purely numeric path segments with `*` so per-iteration and
/// per-task spans aggregate into one row.
pub fn normalize_label(label: &str) -> String {
    if label.is_empty() {
        return "(unphased)".to_string();
    }
    label
        .split('/')
        .map(|seg| {
            if !seg.is_empty() && seg.bytes().all(|b| b.is_ascii_digit()) {
                "*"
            } else {
                seg
            }
        })
        .collect::<Vec<_>>()
        .join("/")
}

fn build_section(index: usize, cap: &RunCapture) -> RunSection {
    let graph: CausalGraph = match_events(&cap.events);
    let cp = critical_path(cap, &graph);

    let mut totals = ProcStats::default();
    for s in &cap.stats {
        totals.merge(s);
    }

    // Span aggregation and histograms.
    let mut span_agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut hist_msg_bytes = Histogram::default();
    let mut hist_phase_ns = Histogram::default();
    let mut hist_recv_ns = Histogram::default();
    for e in &cap.events {
        match &e.kind {
            EventKind::Phase { label, .. } => {
                let d = (e.end - e.start).nanos();
                hist_phase_ns.add(d);
                let slot = span_agg.entry(normalize_label(label)).or_default();
                slot.0 += 1;
                slot.1 += d;
            }
            EventKind::Send { bytes, .. } => hist_msg_bytes.add(*bytes),
            EventKind::Recv { .. } => hist_recv_ns.add((e.end - e.start).nanos()),
            _ => {}
        }
    }

    // Critical-path attribution per normalized phase and per exact label.
    let mut crit_agg: BTreeMap<String, [u64; 5]> = BTreeMap::new();
    let mut exact_agg: BTreeMap<(String, usize), u64> = BTreeMap::new();
    for seg in &cp.segments {
        let ns = (seg.end - seg.start).nanos();
        crit_agg.entry(normalize_label(&seg.phase)).or_default()[seg.category.index()] += ns;
        let exact = if seg.phase.is_empty() {
            "(unphased)".to_string()
        } else {
            seg.phase.clone()
        };
        *exact_agg.entry((exact, seg.category.index())).or_default() += ns;
    }

    // One row per label that appeared as a span or received attribution.
    let mut labels: Vec<String> = span_agg.keys().chain(crit_agg.keys()).cloned().collect();
    labels.sort_unstable();
    labels.dedup();
    let mut phases: Vec<PhaseRow> = labels
        .into_iter()
        .map(|label| {
            let (spans, span_ns) = span_agg.get(&label).copied().unwrap_or((0, 0));
            let crit = crit_agg.get(&label).copied().unwrap_or_default();
            PhaseRow {
                label,
                spans,
                span_ns,
                crit,
            }
        })
        .collect();
    phases.sort_by(|a, b| {
        b.crit_total()
            .cmp(&a.crit_total())
            .then_with(|| a.label.cmp(&b.label))
    });

    let mut top: Vec<(String, Category, u64)> = exact_agg
        .into_iter()
        .map(|((label, cat), ns)| (label, Category::ALL[cat], ns))
        .collect();
    top.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (&a.0, a.1).cmp(&(&b.0, b.1))));
    top.truncate(TOP_K);

    // Attach the (wall-clock, opt-in) host profile to the telemetry
    // section; without telemetry there is nowhere to surface it.
    let telemetry = collect_telemetry(cap).map(|mut t| {
        t.host_profile = crate::selfprof::host_profile(cap);
        t
    });

    RunSection {
        index,
        procs: cap.proc_names.len(),
        cluster_nodes: cap.cluster_nodes,
        makespan: cap.makespan,
        dropped_msgs: cap.dropped_msgs,
        totals,
        phases,
        causal_edges: graph.edges.len() as u64,
        unmatched_recvs: graph.unmatched_recvs,
        recovery: recovery_slos(cap),
        telemetry,
        crit: cp,
        top,
        hist_msg_bytes,
        hist_phase_ns,
        hist_recv_ns,
    }
}

/// A full, deterministic run report for one bench artifact.
#[derive(Debug)]
pub struct RunReport {
    /// Artifact name (`fig6`, `table2`, ...).
    pub bench: String,
    /// Whether the bin ran in `--quick` mode.
    pub quick: bool,
    /// One section per captured run, in capture order.
    pub sections: Vec<RunSection>,
}

impl RunReport {
    /// Build a report from the runs captured by
    /// [`hpcbd_simnet::observe::end_capture`].
    pub fn from_captures(bench: &str, quick: bool, caps: &[RunCapture]) -> RunReport {
        RunReport {
            bench: bench.to_string(),
            quick,
            sections: caps
                .iter()
                .enumerate()
                .map(|(i, c)| build_section(i, c))
                .collect(),
        }
    }

    /// The report as a [`JsonValue`] document (see module docs for the
    /// determinism rules).
    pub fn to_json_value(&self) -> JsonValue {
        let runs = self
            .sections
            .iter()
            .map(|s| {
                let by_cat = JsonValue::Obj(
                    Category::ALL
                        .iter()
                        .map(|c| {
                            (
                                format!("{}_ns", c.name()),
                                JsonValue::u64(s.crit.by_category[c.index()]),
                            )
                        })
                        .collect(),
                );
                let top = JsonValue::Arr(
                    s.top
                        .iter()
                        .map(|(label, cat, ns)| {
                            JsonValue::Obj(vec![
                                ("phase".into(), JsonValue::str(label.clone())),
                                ("category".into(), JsonValue::str(cat.name())),
                                ("ns".into(), JsonValue::u64(*ns)),
                            ])
                        })
                        .collect(),
                );
                let phases = JsonValue::Arr(
                    s.phases
                        .iter()
                        .map(|p| {
                            let mut kvs = vec![
                                ("phase".into(), JsonValue::str(p.label.clone())),
                                ("spans".into(), JsonValue::u64(p.spans)),
                                ("span_ns".into(), JsonValue::u64(p.span_ns)),
                            ];
                            for c in Category::ALL {
                                kvs.push((
                                    format!("crit_{}_ns", c.name()),
                                    JsonValue::u64(p.crit[c.index()]),
                                ));
                            }
                            JsonValue::Obj(kvs)
                        })
                        .collect(),
                );
                let t = &s.totals;
                let mut run_obj = vec![
                    ("run".into(), JsonValue::u64(s.index as u64)),
                    ("procs".into(), JsonValue::u64(s.procs as u64)),
                    (
                        "cluster_nodes".into(),
                        JsonValue::u64(s.cluster_nodes as u64),
                    ),
                    ("makespan_ns".into(), JsonValue::u64(s.makespan.nanos())),
                    ("dropped_msgs".into(), JsonValue::u64(s.dropped_msgs)),
                    (
                        "totals".into(),
                        JsonValue::Obj(vec![
                            ("msgs_sent".into(), JsonValue::u64(t.msgs_sent)),
                            ("bytes_sent".into(), JsonValue::u64(t.bytes_sent)),
                            ("msgs_recvd".into(), JsonValue::u64(t.msgs_recvd)),
                            ("bytes_recvd".into(), JsonValue::u64(t.bytes_recvd)),
                            ("disk_read_bytes".into(), JsonValue::u64(t.disk_read_bytes)),
                            (
                                "disk_write_bytes".into(),
                                JsonValue::u64(t.disk_write_bytes),
                            ),
                            ("compute_ns".into(), JsonValue::u64(t.compute_time.nanos())),
                            ("wait_ns".into(), JsonValue::u64(t.wait_time.nanos())),
                            ("disk_ns".into(), JsonValue::u64(t.disk_time.nanos())),
                            ("fault_events".into(), JsonValue::u64(t.fault_events)),
                            (
                                "fault_delay_ns".into(),
                                JsonValue::u64(t.fault_delay.nanos()),
                            ),
                        ]),
                    ),
                    (
                        "critical_path".into(),
                        JsonValue::Obj(vec![
                            ("length_ns".into(), JsonValue::u64(s.crit.length.nanos())),
                            (
                                "makespan_ns".into(),
                                JsonValue::u64(s.crit.makespan.nanos()),
                            ),
                            ("by_category".into(), by_cat),
                            ("top_contributors".into(), top),
                        ]),
                    ),
                    ("phases".into(), phases),
                    (
                        "histograms".into(),
                        JsonValue::Obj(vec![
                            ("msg_bytes".into(), s.hist_msg_bytes.to_json()),
                            ("phase_span_ns".into(), s.hist_phase_ns.to_json()),
                            ("recv_span_ns".into(), s.hist_recv_ns.to_json()),
                        ]),
                    ),
                    (
                        "causal".into(),
                        JsonValue::Obj(vec![
                            ("edges".into(), JsonValue::u64(s.causal_edges)),
                            ("unmatched_recvs".into(), JsonValue::u64(s.unmatched_recvs)),
                        ]),
                    ),
                ];
                // Recovery SLOs only exist under an injected fault plan;
                // omitting the key keeps fault-free reports byte-identical
                // to their pre-fault-support goldens.
                // Telemetry only exists when sampling was on; omitting
                // the key keeps telemetry-off reports byte-identical
                // to their goldens, like `recovery` below.
                if let Some(t) = &s.telemetry {
                    run_obj.push(("telemetry".into(), t.to_json_value()));
                }
                if !s.recovery.is_empty() {
                    let faults = JsonValue::Arr(
                        s.recovery
                            .faults
                            .iter()
                            .map(|f| {
                                let mut kvs = vec![
                                    ("node".into(), JsonValue::u64(u64::from(f.node))),
                                    ("crash_ns".into(), JsonValue::u64(f.crash.nanos())),
                                ];
                                if let Some(ttd) = f.time_to_detect_ns() {
                                    kvs.push(("time_to_detect_ns".into(), JsonValue::u64(ttd)));
                                }
                                if let Some(ttr) = f.time_to_recover_ns() {
                                    kvs.push(("time_to_recover_ns".into(), JsonValue::u64(ttr)));
                                }
                                kvs.push(("work_replayed".into(), JsonValue::u64(f.work_replayed)));
                                kvs.push((
                                    "recovery_actions".into(),
                                    JsonValue::u64(f.recovery_actions),
                                ));
                                JsonValue::Obj(kvs)
                            })
                            .collect(),
                    );
                    run_obj.push(("recovery".into(), faults));
                }
                JsonValue::Obj(run_obj)
            })
            .collect();
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::str("hpcbd.report.v1")),
            ("bench".into(), JsonValue::str(self.bench.clone())),
            ("quick".into(), JsonValue::Bool(self.quick)),
            ("runs".into(), JsonValue::Arr(runs)),
        ])
    }

    /// Serialize the report to its canonical JSON text.
    pub fn to_json(&self) -> String {
        let mut s = self.to_json_value().serialize();
        s.push('\n');
        s
    }

    /// Human-readable per-run tables.
    pub fn render_text(&self) -> String {
        fn pct(part: u64, whole: u64) -> String {
            if whole == 0 {
                return "0.0%".to_string();
            }
            let permille = part * 1000 / whole;
            format!("{}.{}%", permille / 10, permille % 10)
        }
        fn ns(v: u64) -> String {
            hpcbd_simnet::SimDuration::from_nanos(v).to_string()
        }
        let mut out = String::new();
        out.push_str(&format!(
            "RUN REPORT — {}{}\n",
            self.bench,
            if self.quick { " (quick)" } else { "" }
        ));
        for s in &self.sections {
            let mk = s.makespan.nanos();
            out.push_str(&format!(
                "\nrun {}: makespan {}  ({} procs on {} nodes)\n",
                s.index,
                ns(mk),
                s.procs,
                s.cluster_nodes
            ));
            let cats = Category::ALL
                .iter()
                .map(|c| format!("{} {}", c.name(), pct(s.crit.by_category[c.index()], mk)))
                .collect::<Vec<_>>()
                .join(" | ");
            out.push_str(&format!(
                "  critical path: {} ({} of makespan)   {}\n",
                ns(s.crit.length.nanos()),
                pct(s.crit.length.nanos(), mk),
                cats
            ));
            if s.totals.fault_events > 0 {
                out.push_str(&format!(
                    "  faults: {} event(s), +{} injected delay\n",
                    s.totals.fault_events, s.totals.fault_delay
                ));
            }
            if !s.recovery.is_empty() {
                out.push_str("  recovery timeline:\n");
                for f in &s.recovery.faults {
                    let ttd = f
                        .time_to_detect_ns()
                        .map_or("undetected".to_string(), |v| format!("detect +{}", ns(v)));
                    let ttr = f
                        .time_to_recover_ns()
                        .map_or("no recovery".to_string(), |v| format!("recover +{}", ns(v)));
                    out.push_str(&format!(
                        "    n{} crashed @{}  {}  {}  work replayed {}  ({} action(s))\n",
                        f.node,
                        ns(f.crash.nanos()),
                        ttd,
                        ttr,
                        f.work_replayed,
                        f.recovery_actions
                    ));
                }
            }
            if let Some(t) = &s.telemetry {
                out.push_str(&format!(
                    "  telemetry: {} series sampled @ {} ({} windows)\n",
                    t.series.len(),
                    ns(t.interval_ns),
                    t.windows
                ));
                for o in &t.slo {
                    out.push_str(&format!(
                        "    slo {}{}{}: attainment {}.{:04}% ({} of {} windows breached)\n",
                        o.monitor.metric,
                        if o.monitor.labels.is_empty() { "" } else { "{" },
                        if o.monitor.labels.is_empty() {
                            String::new()
                        } else {
                            format!("{}}}", o.monitor.labels)
                        },
                        o.attainment_ppm / 10_000,
                        o.attainment_ppm % 10_000,
                        o.windows_breached,
                        o.windows_evaluated
                    ));
                }
            }
            out.push_str("  per-phase breakdown (critical-path attribution; sums to makespan):\n");
            out.push_str(&format!(
                "    {:<40} {:>6} {:>12} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
                "PHASE", "SPANS", "SPAN-TIME", "COMPUTE", "COMM", "DISK", "WAIT", "IDLE"
            ));
            for p in &s.phases {
                out.push_str(&format!(
                    "    {:<40} {:>6} {:>12} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
                    p.label,
                    p.spans,
                    ns(p.span_ns),
                    pct(p.crit[0], mk),
                    pct(p.crit[1], mk),
                    pct(p.crit[2], mk),
                    pct(p.crit[3], mk),
                    pct(p.crit[4], mk),
                ));
            }
            if !s.top.is_empty() {
                out.push_str("  top critical-path contributors:\n");
                for (i, (label, cat, v)) in s.top.iter().enumerate() {
                    out.push_str(&format!(
                        "    {:>2}. {:<44} {:<8} {:>12} ({})\n",
                        i + 1,
                        label,
                        cat.name(),
                        ns(*v),
                        pct(*v, mk)
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{NodeId, Pid, TraceEvent};

    fn small_capture() -> RunCapture {
        let ev = |pid: u32, start: u64, end: u64, kind: EventKind| TraceEvent {
            pid: Pid(pid),
            start: SimTime(start),
            end: SimTime(end),
            kind,
        };
        RunCapture {
            proc_names: vec!["a".into(), "b".into()],
            proc_nodes: vec![NodeId(0), NodeId(1)],
            finishes: vec![SimTime(50), SimTime(100)],
            stats: vec![ProcStats::default(), ProcStats::default()],
            makespan: SimTime(100),
            cluster_nodes: 2,
            dropped_msgs: 0,
            telemetry_interval: None,
            metric_points: Vec::new(),
            spec_commits: 0,
            spec_rollbacks: 0,
            events: vec![
                ev(
                    0,
                    0,
                    50,
                    EventKind::Phase {
                        label: "work/iter/0".into(),
                        depth: 0,
                    },
                ),
                ev(0, 0, 40, EventKind::Compute),
                ev(
                    0,
                    40,
                    50,
                    EventKind::Send {
                        dst: Pid(1),
                        bytes: 1024,
                    },
                ),
                ev(
                    1,
                    0,
                    80,
                    EventKind::Recv {
                        src: Pid(0),
                        bytes: 1024,
                    },
                ),
                ev(1, 80, 100, EventKind::DiskWrite { bytes: 4096 }),
            ],
        }
    }

    #[test]
    fn phase_breakdown_sums_to_makespan() {
        let cap = small_capture();
        let report = RunReport::from_captures("unit", true, &[cap]);
        let s = &report.sections[0];
        let total: u64 = s.phases.iter().map(|p| p.crit_total()).sum();
        assert_eq!(total, s.makespan.nanos());
        assert!(s.crit.length.nanos() <= s.makespan.nanos());
    }

    #[test]
    fn labels_normalize_numeric_segments() {
        assert_eq!(
            normalize_label("work/iter/17/shuffle"),
            "work/iter/*/shuffle"
        );
        assert_eq!(normalize_label("plain"), "plain");
        assert_eq!(normalize_label(""), "(unphased)");
        assert_eq!(normalize_label("a/b2/3"), "a/b2/*");
    }

    #[test]
    fn json_has_required_keys_and_roundtrips() {
        let cap = small_capture();
        let report = RunReport::from_captures("unit", false, &[cap]);
        let text = report.to_json();
        let v = JsonValue::parse(&text).expect("report JSON must parse");
        assert_eq!(
            v.get("schema").and_then(|s| match s {
                JsonValue::Str(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("hpcbd.report.v1")
        );
        let runs = v.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 1);
        for key in [
            "run",
            "procs",
            "cluster_nodes",
            "makespan_ns",
            "totals",
            "critical_path",
            "phases",
            "histograms",
            "causal",
        ] {
            assert!(runs[0].get(key).is_some(), "missing key {key}");
        }
        // Canonical form round-trips byte-exactly.
        assert_eq!(format!("{}\n", v.serialize()), text);
    }

    #[test]
    fn report_is_deterministic_for_identical_captures() {
        let a = RunReport::from_captures("unit", true, &[small_capture()]).to_json();
        let b = RunReport::from_captures("unit", true, &[small_capture()]).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn text_table_mentions_phases_and_categories() {
        let report = RunReport::from_captures("unit", true, &[small_capture()]);
        let txt = report.render_text();
        assert!(txt.contains("work/iter/*"), "text: {txt}");
        assert!(txt.contains("critical path:"), "text: {txt}");
        assert!(txt.contains("PHASE"), "text: {txt}");
    }

    #[test]
    fn recovery_key_appears_only_under_faults() {
        use hpcbd_simnet::FaultEvent;
        let clean = RunReport::from_captures("unit", true, &[small_capture()]);
        let v = JsonValue::parse(&clean.to_json()).unwrap();
        assert!(
            v.get("runs").unwrap().as_arr().unwrap()[0]
                .get("recovery")
                .is_none(),
            "fault-free reports must stay byte-identical to old goldens"
        );

        let mut cap = small_capture();
        let fault = |t: u64, ev: FaultEvent| TraceEvent {
            pid: Pid(0),
            start: SimTime(t),
            end: SimTime(t),
            kind: EventKind::Fault(ev),
        };
        cap.events
            .push(fault(10, FaultEvent::NodeCrash { node: NodeId(1) }));
        cap.events.push(fault(
            20,
            FaultEvent::Recovery {
                runtime: "mpi",
                action: "rank_failure_detected",
                detail: 1,
            },
        ));
        cap.events.push(fault(
            30,
            FaultEvent::Recovery {
                runtime: "mpi",
                action: "checkpoint_restart",
                detail: 2,
            },
        ));
        let faulty = RunReport::from_captures("unit", true, &[cap]);
        let v = JsonValue::parse(&faulty.to_json()).unwrap();
        let rec = v.get("runs").unwrap().as_arr().unwrap()[0]
            .get("recovery")
            .expect("faulted run must report recovery SLOs");
        let f = &rec.as_arr().unwrap()[0];
        assert_eq!(f.get("time_to_detect_ns"), Some(&JsonValue::u64(10)));
        assert_eq!(f.get("time_to_recover_ns"), Some(&JsonValue::u64(20)));
        assert_eq!(f.get("work_replayed"), Some(&JsonValue::u64(2)));
        let txt = faulty.render_text();
        assert!(txt.contains("recovery timeline:"), "text: {txt}");
        assert!(txt.contains("n1 crashed"), "text: {txt}");
    }

    #[test]
    fn telemetry_key_appears_only_when_sampling_was_on() {
        let off = RunReport::from_captures("unit", true, &[small_capture()]);
        let v = JsonValue::parse(&off.to_json()).unwrap();
        assert!(
            v.get("runs").unwrap().as_arr().unwrap()[0]
                .get("telemetry")
                .is_none(),
            "telemetry-off reports must stay byte-identical to old goldens"
        );

        let mut cap = small_capture();
        cap.telemetry_interval = Some(10);
        let on = RunReport::from_captures("unit", true, &[cap]);
        let v = JsonValue::parse(&on.to_json()).unwrap();
        let t = v.get("runs").unwrap().as_arr().unwrap()[0]
            .get("telemetry")
            .expect("telemetry-on run must carry the section");
        assert_eq!(t.get("interval_ns"), Some(&JsonValue::u64(10)));
        assert!(!t.get("series").unwrap().as_arr().unwrap().is_empty());
        let txt = on.render_text();
        assert!(txt.contains("telemetry:"), "text: {txt}");
        assert!(txt.contains("slo "), "text: {txt}");
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        h.add(0);
        h.add(1);
        h.add(1023);
        h.add(1024);
        let json = h.to_json().serialize();
        assert_eq!(json, "[[0,1],[1,1],[512,1],[1024,1]]");
        assert_eq!(h.total(), 4);
    }
}
