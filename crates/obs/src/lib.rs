//! `hpcbd-obs` — the phase-attributed profiling layer.
//!
//! Turns the raw per-process event stream captured by
//! [`hpcbd_simnet::observe`] into an *explanation* of a run:
//!
//! * [`causal`] links every `Send` to the `Recv` that consumed it,
//!   giving a cross-process event DAG (and Perfetto flow arrows).
//! * [`critical`] walks that DAG backwards from the last-finishing
//!   process and partitions the whole `[0, makespan]` interval into
//!   contiguous segments, each attributed to a category
//!   (compute / comm / disk / wait / idle) and to the innermost
//!   runtime phase span enclosing it — the mechanical version of the
//!   paper's "where does the time go" narrative.
//! * [`report`] aggregates segments, spans and statistics into a
//!   [`RunReport`] with a stable JSON encoding and a human text table.
//! * [`perfetto`] extends the Chrome-tracing export with phase spans
//!   and send→recv flow arrows.
//! * [`recovery`] folds structured fault/recovery trace records into
//!   per-crash SLOs — time-to-detect, time-to-recover, work replayed —
//!   surfaced in the report's `recovery` key and text timeline.
//! * [`metrics`] builds live telemetry: a lock-sharded metrics
//!   registry sampled at virtual-time ticks into windowed time-series
//!   (queue depth, device utilization, latency quantiles) with SLO
//!   monitors — the report's optional `telemetry` key.
//! * [`selfprof`] folds the engine's host-side self-profiler counters
//!   into the `host_profile` rows (wall-clock-dependent, opt-in via
//!   `HPCBD_SELFPROF`).
//!
//! Everything here is a pure function of the captured run — which is
//! itself a pure function of virtual-time state — so reports are
//! byte-identical across executions and execution modes. The JSON
//! encoder ([`json`]) emits integers only (nanoseconds, counts) in a
//! fixed key order; no floats, no maps with unstable iteration order.

#![warn(missing_docs)]

pub mod causal;
pub mod critical;
pub mod diff;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod recovery;
pub mod report;
pub mod selfprof;

pub use causal::{match_events, CausalEdge, CausalGraph};
pub use critical::{critical_path, Category, CriticalPath, Segment};
pub use diff::{first_divergence, LineDivergence};
pub use json::JsonValue;
pub use metrics::{
    collect_telemetry, effective_interval, Hist64, MetricKind, Points, QuantileSummary, Registry,
    SloBreach, SloMonitor, SloOutcome, Telemetry, TimeSeries,
};
pub use perfetto::{to_perfetto_json, to_perfetto_json_with_telemetry};
pub use recovery::{recovery_slos, FaultRecovery, RecoverySummary};
pub use report::{PhaseRow, RunReport, RunSection};
pub use selfprof::host_profile;
