//! Extended Perfetto / Chrome-tracing export: the full event timeline
//! (phase spans included) plus flow arrows for every matched send→recv
//! edge, so the causal structure is visible in the UI.
//!
//! Builds on the same complete-event (`ph: "X"`) encoding as
//! [`hpcbd_simnet::Trace::to_chrome_json`]; flow arrows use `ph: "s"` /
//! `ph: "f"` pairs whose `id` is the edge index.

use hpcbd_simnet::observe::RunCapture;
use hpcbd_simnet::{json_escape, EventKind};

use crate::causal::CausalGraph;

fn us(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1e3)
}

/// Render a captured run (events + causal edges) as a Chrome tracing
/// JSON array loadable in Perfetto.
pub fn to_perfetto_json(cap: &RunCapture, graph: &CausalGraph) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for e in &cap.events {
        let name: &str = match &e.kind {
            EventKind::Phase { label, .. } => label,
            _ => e.kind.label(),
        };
        let proc = cap
            .proc_names
            .get(e.pid.index())
            .map(|s| s.as_str())
            .unwrap_or("?");
        push(
            format!(
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": {}, \"args\": {{\"proc\": \"{}\"}}}}",
                json_escape(name),
                e.kind.label(),
                us(e.start.nanos()),
                us(e.end.nanos().saturating_sub(e.start.nanos())),
                e.pid.0,
                json_escape(proc),
            ),
            &mut out,
        );
    }
    for (i, edge) in graph.edges.iter().enumerate() {
        let s = &cap.events[edge.send];
        let r = &cap.events[edge.recv];
        push(
            format!(
                "  {{\"name\": \"msg\", \"cat\": \"flow\", \"ph\": \"s\", \"id\": {i}, \"ts\": {}, \"pid\": 0, \"tid\": {}}}",
                us(s.end.nanos()),
                s.pid.0,
            ),
            &mut out,
        );
        push(
            format!(
                "  {{\"name\": \"msg\", \"cat\": \"flow\", \"ph\": \"f\", \"bp\": \"e\", \"id\": {i}, \"ts\": {}, \"pid\": 0, \"tid\": {}}}",
                us(r.end.nanos()),
                r.pid.0,
            ),
            &mut out,
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::match_events;
    use crate::json::JsonValue;
    use hpcbd_simnet::{NodeId, Pid, ProcStats, SimTime, TraceEvent};

    #[test]
    fn flow_arrows_connect_matched_pairs() {
        let ev = |pid: u32, start: u64, end: u64, kind: EventKind| TraceEvent {
            pid: Pid(pid),
            start: SimTime(start),
            end: SimTime(end),
            kind,
        };
        let cap = RunCapture {
            proc_names: vec!["send\"er".into(), "recv".into()],
            proc_nodes: vec![NodeId(0), NodeId(1)],
            finishes: vec![SimTime(10), SimTime(30)],
            stats: vec![ProcStats::default(), ProcStats::default()],
            makespan: SimTime(30),
            cluster_nodes: 2,
            dropped_msgs: 0,
            events: vec![
                ev(
                    0,
                    0,
                    10,
                    EventKind::Send {
                        dst: Pid(1),
                        bytes: 64,
                    },
                ),
                ev(
                    1,
                    0,
                    30,
                    EventKind::Recv {
                        src: Pid(0),
                        bytes: 64,
                    },
                ),
            ],
        };
        let graph = match_events(&cap.events);
        let json = to_perfetto_json(&cap, &graph);
        assert!(json.contains("\"ph\": \"s\""), "json: {json}");
        assert!(json.contains("\"ph\": \"f\""), "json: {json}");
        assert!(json.contains(r#"send\"er"#), "escaped name: {json}");
        // The whole document must be valid JSON.
        JsonValue::parse(&json).expect("perfetto export must parse");
    }
}
