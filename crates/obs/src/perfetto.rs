//! Extended Perfetto / Chrome-tracing export: the full event timeline
//! (phase spans included) plus flow arrows for every matched send→recv
//! edge, so the causal structure is visible in the UI — and, when the
//! run carried telemetry, one counter track (`ph: "C"`) per sampled
//! series plus an instant event (`ph: "i"`) per SLO breach.
//!
//! Builds on the same complete-event (`ph: "X"`) encoding as
//! [`hpcbd_simnet::Trace::to_chrome_json`]; flow arrows use `ph: "s"` /
//! `ph: "f"` pairs whose `id` is the edge index. Counter-track names
//! pass through [`json_escape`] exactly like event names — a metric
//! label containing a quote must not corrupt the document.

use hpcbd_simnet::observe::RunCapture;
use hpcbd_simnet::{json_escape, EventKind};

use crate::causal::CausalGraph;
use crate::metrics::{Points, Telemetry};

fn us(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1e3)
}

/// Render a captured run (events + causal edges) as a Chrome tracing
/// JSON array loadable in Perfetto.
pub fn to_perfetto_json(cap: &RunCapture, graph: &CausalGraph) -> String {
    to_perfetto_json_with_telemetry(cap, graph, None)
}

/// [`to_perfetto_json`], plus counter tracks and SLO-breach instants
/// for a sampled [`Telemetry`] section.
pub fn to_perfetto_json_with_telemetry(
    cap: &RunCapture,
    graph: &CausalGraph,
    telemetry: Option<&Telemetry>,
) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for e in &cap.events {
        let name: &str = match &e.kind {
            EventKind::Phase { label, .. } => label,
            _ => e.kind.label(),
        };
        let proc = cap
            .proc_names
            .get(e.pid.index())
            .map(|s| s.as_str())
            .unwrap_or("?");
        push(
            format!(
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": {}, \"args\": {{\"proc\": \"{}\"}}}}",
                json_escape(name),
                e.kind.label(),
                us(e.start.nanos()),
                us(e.end.nanos().saturating_sub(e.start.nanos())),
                e.pid.0,
                json_escape(proc),
            ),
            &mut out,
        );
    }
    for (i, edge) in graph.edges.iter().enumerate() {
        let s = &cap.events[edge.send];
        let r = &cap.events[edge.recv];
        push(
            format!(
                "  {{\"name\": \"msg\", \"cat\": \"flow\", \"ph\": \"s\", \"id\": {i}, \"ts\": {}, \"pid\": 0, \"tid\": {}}}",
                us(s.end.nanos()),
                s.pid.0,
            ),
            &mut out,
        );
        push(
            format!(
                "  {{\"name\": \"msg\", \"cat\": \"flow\", \"ph\": \"f\", \"bp\": \"e\", \"id\": {i}, \"ts\": {}, \"pid\": 0, \"tid\": {}}}",
                us(r.end.nanos()),
                r.pid.0,
            ),
            &mut out,
        );
    }
    if let Some(t) = telemetry {
        for s in &t.series {
            // Track title: `name{labels}` — escaped the same way event
            // names are, so a quote in a label cannot break the JSON.
            let title = if s.labels.is_empty() {
                s.name.to_string()
            } else {
                format!("{}{{{}}}", s.name, s.labels)
            };
            let title = json_escape(&title);
            // One representative value per point: the per-window delta
            // for counters (reads as a rate), the value for gauges, the
            // windowed p99 for histograms.
            let rows: Vec<(u64, u64)> = match &s.points {
                Points::Counter(v) => v.iter().map(|p| (p[0], p[1])).collect(),
                Points::Gauge(v) => v.iter().map(|p| (p[0], p[1])).collect(),
                Points::Histogram(v) => v.iter().map(|p| (p[0], p[3])).collect(),
            };
            for (t_ns, value) in rows {
                push(
                    format!(
                        "  {{\"name\": \"{title}\", \"cat\": \"telemetry\", \"ph\": \"C\", \"ts\": {}, \"pid\": 0, \"args\": {{\"value\": {value}}}}}",
                        us(t_ns),
                    ),
                    &mut out,
                );
            }
        }
        for o in &t.slo {
            for b in &o.breaches {
                let name = json_escape(&format!("slo_breach {}", o.monitor.metric));
                push(
                    format!(
                        "  {{\"name\": \"{name}\", \"cat\": \"slo\", \"ph\": \"i\", \"s\": \"g\", \"ts\": {}, \"pid\": 0, \"tid\": 0, \"args\": {{\"observed_p99\": {}, \"threshold\": {}}}}}",
                        us(b.t_ns),
                        b.observed_p99,
                        b.threshold,
                    ),
                    &mut out,
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::match_events;
    use crate::json::JsonValue;
    use hpcbd_simnet::{NodeId, Pid, ProcStats, SimTime, TraceEvent};

    #[test]
    fn flow_arrows_connect_matched_pairs() {
        let ev = |pid: u32, start: u64, end: u64, kind: EventKind| TraceEvent {
            pid: Pid(pid),
            start: SimTime(start),
            end: SimTime(end),
            kind,
        };
        let cap = RunCapture {
            proc_names: vec!["send\"er".into(), "recv".into()],
            proc_nodes: vec![NodeId(0), NodeId(1)],
            finishes: vec![SimTime(10), SimTime(30)],
            stats: vec![ProcStats::default(), ProcStats::default()],
            makespan: SimTime(30),
            cluster_nodes: 2,
            dropped_msgs: 0,
            events: vec![
                ev(
                    0,
                    0,
                    10,
                    EventKind::Send {
                        dst: Pid(1),
                        bytes: 64,
                    },
                ),
                ev(
                    1,
                    0,
                    30,
                    EventKind::Recv {
                        src: Pid(0),
                        bytes: 64,
                    },
                ),
            ],
            telemetry_interval: None,
            metric_points: Vec::new(),
            spec_commits: 0,
            spec_rollbacks: 0,
        };
        let graph = match_events(&cap.events);
        let json = to_perfetto_json(&cap, &graph);
        assert!(json.contains("\"ph\": \"s\""), "json: {json}");
        assert!(json.contains("\"ph\": \"f\""), "json: {json}");
        assert!(json.contains(r#"send\"er"#), "escaped name: {json}");
        // The whole document must be valid JSON.
        JsonValue::parse(&json).expect("perfetto export must parse");
    }

    #[test]
    fn counter_tracks_escape_names_and_breaches_become_instants() {
        use crate::metrics::Registry;
        // A label with a quote: the counter-track name must be escaped
        // the same way event names are.
        let reg = Registry::new();
        reg.counter_add("util", "disk=\"sda\"", 0, 7);
        reg.counter_add("util", "disk=\"sda\"", 15, 3);
        // A histogram whose last window breaches its 4×p50 SLO.
        for t in 0..10u64 {
            reg.observe("lat", "", t, 100);
        }
        reg.observe("lat", "", 15, 1 << 30);
        let telemetry = reg.sample(10, 20);
        assert!(
            telemetry.slo.iter().any(|o| o.windows_breached > 0),
            "fixture must actually breach"
        );

        let cap = RunCapture {
            proc_names: vec!["p".into()],
            proc_nodes: vec![NodeId(0)],
            finishes: vec![SimTime(20)],
            stats: vec![ProcStats::default()],
            makespan: SimTime(20),
            cluster_nodes: 1,
            dropped_msgs: 0,
            events: Vec::new(),
            telemetry_interval: Some(10),
            metric_points: Vec::new(),
            spec_commits: 0,
            spec_rollbacks: 0,
        };
        let graph = match_events(&cap.events);
        let json = to_perfetto_json_with_telemetry(&cap, &graph, Some(&telemetry));
        assert!(json.contains("\"ph\": \"C\""), "counter track: {json}");
        assert!(
            json.contains(r#"util{disk=\"sda\"}"#),
            "escaped track name: {json}"
        );
        assert!(json.contains("\"ph\": \"i\""), "breach instant: {json}");
        assert!(json.contains("slo_breach lat"), "breach name: {json}");
        // Escaping must keep the whole document valid JSON.
        JsonValue::parse(&json).expect("perfetto export with telemetry must parse");
    }
}
