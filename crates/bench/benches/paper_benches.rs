//! Criterion benches: one group per reproduced table/figure, on
//! scaled-down configurations.
//!
//! These measure the *simulator's wall-clock cost* of regenerating each
//! artifact (the virtual-time results themselves are deterministic and
//! printed by the `src/bin` harnesses). Keeping them in `cargo bench`
//! guards against performance regressions in the engine and the
//! framework runtimes.

use criterion::{criterion_group, criterion_main, Criterion};

use hpcbd_cluster::Placement;
use hpcbd_core::bench_answers;
use hpcbd_core::bench_fileread;
use hpcbd_core::bench_pagerank::{
    mpi_pagerank, persist_ablation, shmem_pagerank, spark_pagerank, PagerankInput, SparkVariant,
};
use hpcbd_core::bench_reduce;
use hpcbd_minspark::ShuffleEngine;
use hpcbd_workloads::StackExchangeDataset;

fn small_placement() -> Placement {
    Placement::new(2, 4)
}

fn small_ds() -> StackExchangeDataset {
    let size = 2u64 << 30;
    let records = size / hpcbd_workloads::stackexchange::RECORD_BYTES;
    StackExchangeDataset::new(0xBE7C, size, records / 10_000)
}

fn fig3_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_reduce");
    g.sample_size(10);
    g.bench_function("mpi_4B", |b| {
        b.iter(|| bench_reduce::mpi_reduce_latency(small_placement(), 1, 3))
    });
    g.bench_function("mpi_64KB", |b| {
        b.iter(|| bench_reduce::mpi_reduce_latency(small_placement(), 16384, 3))
    });
    g.bench_function("spark_4B", |b| {
        b.iter(|| bench_reduce::spark_reduce_latency(small_placement(), 1, false))
    });
    g.finish();
}

fn table2_fileread(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_fileread");
    g.sample_size(10);
    let size = 1u64 << 30;
    g.bench_function("spark_hdfs", |b| {
        b.iter(|| bench_fileread::spark_hdfs_read(small_placement(), size, 2))
    });
    g.bench_function("spark_local", |b| {
        b.iter(|| bench_fileread::spark_local_read(small_placement(), size))
    });
    g.bench_function("mpi", |b| {
        b.iter(|| bench_fileread::mpi_read(small_placement(), size).unwrap())
    });
    g.finish();
}

fn fig4_answers(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_answers");
    g.sample_size(10);
    let ds = small_ds();
    g.bench_function("openmp_8", {
        let ds = ds.clone();
        move |b| b.iter(|| bench_answers::openmp_answers(&ds, 8))
    });
    g.bench_function("mpi", {
        let ds = ds.clone();
        move |b| b.iter(|| bench_answers::mpi_answers(&ds, small_placement()).unwrap())
    });
    g.bench_function("spark", {
        let ds = ds.clone();
        move |b| b.iter(|| bench_answers::spark_answers(&ds, small_placement()))
    });
    g.bench_function("hadoop", {
        let ds = ds.clone();
        move |b| b.iter(|| bench_answers::hadoop_answers(&ds, small_placement()))
    });
    g.finish();
}

fn fig6_pagerank(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_pagerank");
    g.sample_size(10);
    let input = PagerankInput::small();
    g.bench_function("mpi", {
        let input = input.clone();
        move |b| b.iter(|| mpi_pagerank(&input, small_placement()))
    });
    g.bench_function("spark_tuned_socket", {
        let input = input.clone();
        move |b| {
            b.iter(|| {
                spark_pagerank(
                    &input,
                    small_placement(),
                    SparkVariant::BigDataBenchTuned,
                    ShuffleEngine::Socket,
                )
            })
        }
    });
    g.bench_function("spark_tuned_rdma", {
        let input = input.clone();
        move |b| {
            b.iter(|| {
                spark_pagerank(
                    &input,
                    small_placement(),
                    SparkVariant::BigDataBenchTuned,
                    ShuffleEngine::Rdma,
                )
            })
        }
    });
    g.finish();
}

fn fig7_pagerank_hibench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_pagerank_hibench");
    g.sample_size(10);
    let input = PagerankInput::small();
    for (name, engine) in [
        ("socket", ShuffleEngine::Socket),
        ("rdma", ShuffleEngine::Rdma),
    ] {
        let input = input.clone();
        g.bench_function(name, move |b| {
            b.iter(|| spark_pagerank(&input, small_placement(), SparkVariant::HiBench, engine))
        });
    }
    g.finish();
}

fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let input = PagerankInput::small();
    g.bench_function("persist_ablation", {
        let input = input.clone();
        move |b| b.iter(|| persist_ablation(&input, small_placement()))
    });
    g.bench_function("shmem_pagerank", {
        let input = input.clone();
        move |b| b.iter(|| shmem_pagerank(&input, small_placement()))
    });
    g.finish();
}

criterion_group!(
    benches,
    fig3_reduce,
    table2_fileread,
    fig4_answers,
    fig6_pagerank,
    fig7_pagerank_hibench,
    ablations
);
criterion_main!(benches);
