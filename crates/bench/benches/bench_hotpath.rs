//! Criterion microbenchmarks for the engine's host hot path.
//!
//! Complements `paper_benches` (whole-artifact wall clock) with the
//! individual mechanisms the perf work targets: the calendar ready
//! queue vs the `BinaryHeap` it replaced, raw message-handoff cost
//! through the engine in every execution mode, the speculation
//! machinery's checkpoint-capture and rollback-replay costs, the
//! tracing overhead of per-process buffering, and the memoized
//! collective selection.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hpcbd_simnet::{
    allreduce_algo, set_default_execution, CalendarQueue, Execution, MatchSpec, NodeId, OrderKey,
    Payload, Pid, Sim, SimTime, Topology, Transport, Work,
};

/// Queue churn modeling the engine's access pattern: a sliding window of
/// `window` keys, each pop followed by a push slightly in the future.
fn queue_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_churn");
    g.sample_size(20);
    for window in [64usize, 4096] {
        let keys: Vec<OrderKey> = (0..window)
            .map(|i| OrderKey {
                time: SimTime(i as u64 * 1000),
                pid: Pid((i % 97) as u32),
                gen: i as u64,
            })
            .collect();
        g.bench_function(&format!("calendar_{window}"), |b| {
            b.iter(|| {
                let mut q = CalendarQueue::new();
                for &k in &keys {
                    q.push(k);
                }
                for i in 0..window * 4 {
                    let min = q.pop_min().unwrap();
                    q.push(OrderKey {
                        time: min.time + hpcbd_simnet::SimDuration::from_nanos(window as u64 * 500),
                        pid: min.pid,
                        gen: min.gen + 1,
                    });
                    black_box(i);
                }
                while q.pop_min().is_some() {}
            })
        });
        g.bench_function(&format!("binary_heap_{window}"), |b| {
            b.iter(|| {
                let mut q: BinaryHeap<Reverse<OrderKey>> = BinaryHeap::new();
                for &k in &keys {
                    q.push(Reverse(k));
                }
                for i in 0..window * 4 {
                    let Reverse(min) = q.pop().unwrap();
                    q.push(Reverse(OrderKey {
                        time: min.time + hpcbd_simnet::SimDuration::from_nanos(window as u64 * 500),
                        pid: min.pid,
                        gen: min.gen + 1,
                    }));
                    black_box(i);
                }
                while q.pop().is_some() {}
            })
        });
    }
    g.finish();
}

/// Raw engine handoff cost: a 2-process ping-pong, 200 rounds — almost
/// every cycle is align/dispatch/park/wake machinery.
fn pingpong(exec: Execution, tracing: bool) -> u64 {
    set_default_execution(exec);
    let mut sim = Sim::new(Topology::comet(2));
    if tracing {
        sim.enable_tracing();
    }
    let tr = Transport::ipoib_socket();
    let a = sim.spawn(NodeId(0), "a", {
        move |ctx| {
            let peer = Pid(1);
            for i in 0..200u64 {
                ctx.send(peer, 1, 64, Payload::value(i), &tr);
                let _ = ctx.recv(MatchSpec::tag(2));
            }
            ctx.now().nanos()
        }
    });
    let _b = sim.spawn(NodeId(1), "b", {
        move |ctx| {
            let peer = Pid(0);
            for i in 0..200u64 {
                let _ = ctx.recv(MatchSpec::tag(1));
                ctx.send(peer, 2, 64, Payload::value(i), &tr);
            }
        }
    });
    let mut report = sim.run();
    report.result::<u64>(a)
}

fn engine_handoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_handoff");
    g.sample_size(20);
    g.bench_function("pingpong_sequential", |b| {
        b.iter(|| black_box(pingpong(Execution::Sequential, false)))
    });
    g.bench_function("pingpong_parallel", |b| {
        b.iter(|| black_box(pingpong(Execution::Parallel { threads: 2 }, false)))
    });
    g.bench_function("pingpong_speculative", |b| {
        b.iter(|| black_box(pingpong(Execution::Speculative { threads: 2 }, false)))
    });
    set_default_execution(Execution::Sequential);
    g.finish();
}

/// A device-heavy single process: every disk/NFS op in speculative mode
/// captures a checkpoint, snapshots the device cell, applies the
/// prediction and parks for validation. Uncontended, so every
/// speculation commits clean — the delta against sequential is pure
/// checkpoint-capture + validate cost. With `SpecBug::ForceReplay`
/// planted, every one of those speculations instead rolls back and
/// replays under the token, pricing the full rollback-replay path.
fn device_loop(exec: Execution, ops: u64) -> u64 {
    set_default_execution(exec);
    let mut sim = Sim::new(Topology::comet(1));
    sim.spawn(NodeId(0), "dev", move |ctx| {
        for _ in 0..ops {
            ctx.disk_write(1 << 16);
            ctx.nfs_read(1 << 12);
        }
        ctx.now().nanos()
    });
    black_box(sim.run().makespan().nanos())
}

fn speculation_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("speculation_overhead");
    g.sample_size(20);
    const OPS: u64 = 200;
    g.bench_function("device_loop_sequential", |b| {
        b.iter(|| black_box(device_loop(Execution::Sequential, OPS)))
    });
    g.bench_function("device_loop_checkpoint_commit", |b| {
        b.iter(|| black_box(device_loop(Execution::Speculative { threads: 1 }, OPS)))
    });
    g.bench_function("device_loop_rollback_replay", |b| {
        hpcbd_simnet::set_spec_bug(Some(hpcbd_simnet::SpecBug::ForceReplay));
        b.iter(|| black_box(device_loop(Execution::Speculative { threads: 1 }, OPS)));
        hpcbd_simnet::set_spec_bug(None);
    });
    set_default_execution(Execution::Sequential);
    g.finish();
}

/// Tracing overhead: the same workload with the per-process trace
/// buffers on vs off. The delta is the cost the buffering must keep
/// near zero.
fn tracing_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracing_overhead");
    g.sample_size(20);
    g.bench_function("pingpong_untraced", |b| {
        b.iter(|| black_box(pingpong(Execution::Sequential, false)))
    });
    g.bench_function("pingpong_traced", |b| {
        b.iter(|| black_box(pingpong(Execution::Sequential, true)))
    });
    g.finish();
}

/// Telemetry overhead: the costs the live-telemetry subsystem must
/// keep invisible. `pingpong_metrics_off` is the plain uncaptured hot
/// path (one resolved `bool` per would-be metric call; must match
/// `engine_handoff/pingpong_sequential`). The captured pair prices the
/// sampler's collection cost against an identical capture without it,
/// and the selfprof pair prices the host profiler's relaxed counters.
fn telemetry_overhead(c: &mut Criterion) {
    fn captured_pingpong(interval: Option<u64>) -> u64 {
        hpcbd_simnet::set_telemetry_interval(interval);
        hpcbd_simnet::begin_capture();
        let r = pingpong(Execution::Sequential, true);
        let caps = hpcbd_simnet::end_capture();
        hpcbd_simnet::set_telemetry_interval(None);
        black_box(caps.len());
        r
    }
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(20);
    g.bench_function("pingpong_metrics_off", |b| {
        hpcbd_simnet::set_telemetry_interval(None);
        b.iter(|| black_box(pingpong(Execution::Sequential, false)))
    });
    g.bench_function("pingpong_captured_no_telemetry", |b| {
        b.iter(|| black_box(captured_pingpong(None)))
    });
    g.bench_function("pingpong_captured_telemetry", |b| {
        b.iter(|| black_box(captured_pingpong(Some(1_000))))
    });
    g.bench_function("pingpong_selfprof_on", |b| {
        hpcbd_simnet::selfprof_reset();
        hpcbd_simnet::set_selfprof(true);
        b.iter(|| black_box(pingpong(Execution::Sequential, false)));
        hpcbd_simnet::set_selfprof(false);
    });
    set_default_execution(Execution::Sequential);
    g.finish();
}

/// Compute-only segments: the self-grant fast path should make a pure
/// compute/sleep loop nearly queue-free.
fn compute_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("compute_loop");
    g.sample_size(20);
    g.bench_function("sleep_chain_1proc", |b| {
        b.iter(|| {
            set_default_execution(Execution::Sequential);
            let mut sim = Sim::new(Topology::comet(1));
            sim.spawn(NodeId(0), "w", |ctx| {
                for _ in 0..500 {
                    ctx.compute(Work::flops(1.0e6), 1.0);
                    ctx.sleep(hpcbd_simnet::SimDuration::from_nanos(100));
                }
                ctx.now().nanos()
            });
            black_box(sim.run().makespan())
        })
    });
    g.finish();
}

/// Memoized collective selection: repeated lookups of the same
/// `(comm, bytes)` key, as PageRank's per-iteration allreduce issues.
fn collective_memo(c: &mut Criterion) {
    let mut g = c.benchmark_group("collective_memo");
    g.sample_size(50);
    g.bench_function("allreduce_algo_repeat", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1000 {
                acc += allreduce_algo(black_box(64), black_box(8 << 20)) as usize;
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    queue_churn,
    engine_handoff,
    speculation_overhead,
    tracing_overhead,
    telemetry_overhead,
    compute_loop,
    collective_memo
);
criterion_main!(benches);
