//! Fig. 3 — reduce microbenchmark: MPI vs Spark vs Spark-RDMA.

use hpcbd_cluster::Placement;
use hpcbd_core::bench_reduce;

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Fig. 3 (reduce microbenchmark)");
    let (placement, sizes, iters) = if args.quick {
        (Placement::new(2, 4), vec![1usize, 256, 16384], 5)
    } else {
        // The paper: 8 nodes x 8 processes/node.
        (Placement::new(8, 8), bench_reduce::standard_sizes(), 20)
    };
    hpcbd_bench::run_with_report("fig3", &args, || {
        let table = bench_reduce::figure3(placement, &sizes, iters);
        println!("{table}");
        println!("shape: MPI in microseconds and growing with size; Spark/Spark-RDMA");
        println!("roughly flat (driver-dominated) and orders of magnitude higher;");
        println!("RDMA indistinguishable because a reduce action shuffles nothing.");
    });
}
