//! Fig. 4 — StackExchange AnswersCount across all four paradigms.

use hpcbd_core::bench_answers;
use hpcbd_workloads::StackExchangeDataset;

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Fig. 4 (StackExchange AnswersCount, 80 GB)");
    let (ds, nodes, ppn) = if args.quick {
        let size = 4u64 << 30;
        let records = size / hpcbd_workloads::stackexchange::RECORD_BYTES;
        (
            StackExchangeDataset::new(0xA125, size, records / 20_000),
            vec![1u32, 2],
            4,
        )
    } else {
        (bench_answers::dataset(), vec![1u32, 2, 4, 6, 8], 8)
    };
    hpcbd_bench::run_with_report("fig4", &args, || {
        let table = bench_answers::figure4(&ds, &nodes, ppn);
        println!("{table}");
        println!("shape: OpenMP disk-bound on one node; MPI infeasible below 41");
        println!("processes (MAX_INT chunks); Spark and Hadoop scale with nodes,");
        println!("Spark well ahead of Hadoop (no per-task disk persistence).");
    });
}
