//! `conformance` — the determinism gate CI actually runs.
//!
//! Three subcommands (see DESIGN.md §11 for the underlying model):
//!
//! * `conformance gate [--bless] [--golden DIR]` — recompute every
//!   bench bin's `--quick` output by invoking the sibling release
//!   binaries, diff each against the golden registry pinned under
//!   `results/golden/`, re-run a subset in parallel execution mode
//!   against the *same* goldens (cross-mode coverage), and byte-compare
//!   phase-attributed JSON reports across modes. `--bless` re-pins the
//!   registry after an intentional behaviour change; the PR diff then
//!   shows exactly which table rows moved.
//! * `conformance explore [--seed N] [--schedules N] [--threads N]
//!   [--pipeline fig3|fig6|fault|all] [--repro-out PATH]` — run the
//!   schedule-perturbation explorer (`hpcbd-check`) over representative
//!   pipelines; on divergence, write a replayable repro file and fail.
//! * `conformance lint [--pipeline ...]` — run the determinism lint
//!   matrix (thread sweep, shuffled polling, allocator poisoning) over
//!   the same pipelines.
//!
//! Exit status is the gate verdict: 0 clean, 1 divergence/mismatch,
//! 2 usage or environment error.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use hpcbd_check::{lint_workload, Explorer, GoldenRegistry, GoldenStatus};
use hpcbd_cluster::Placement;
use hpcbd_core::bench_pagerank::{figure6, PagerankInput};
use hpcbd_core::bench_reduce;

/// Every bench bin the golden registry pins, with the argument set that
/// makes its output deterministic. `bench` needs `--digests` because its
/// normal output is wall-clock timings.
const BINS: &[(&str, &[&str])] = &[
    ("table1", &["--quick"]),
    ("fig3", &["--quick"]),
    ("table2", &["--quick"]),
    ("fig4", &["--quick"]),
    ("fig6", &["--quick"]),
    ("fig7", &["--quick"]),
    ("table3", &["--quick"]),
    ("ablation_persist", &["--quick"]),
    ("ablation_replication", &["--quick"]),
    ("ablation_rdma_all", &["--quick"]),
    ("ablation_fault", &["--quick"]),
    ("ablation_fault_sweep", &["--quick"]),
    ("ablation_shmem_pagerank", &["--quick"]),
    ("ablation_offload", &["--quick"]),
    ("ablation_queries", &["--quick"]),
    ("ablation_seismic", &["--quick"]),
    ("bench", &["--quick", "--digests"]),
];

/// Bins additionally re-run under `HPCBD_EXECUTION=parallel:4` against
/// the same goldens: a cheap cross-mode determinism check on the two
/// pipelines that stress the scheduler hardest (iterative allreduce,
/// fault recovery).
const CROSS_MODE: &[&str] = &["fig6", "ablation_fault_sweep"];

fn usage() -> ExitCode {
    eprintln!(
        "usage: conformance <gate|explore|lint> [options]\n\
         \n\
         gate    [--bless] [--golden DIR]\n\
         explore [--seed N] [--schedules N] [--threads N]\n\
         \x20       [--pipeline fig3|fig6|fault|all] [--repro-out PATH]\n\
         lint    [--pipeline fig3|fig6|fault|all]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gate") => gate(&args[1..]),
        Some("explore") => explore(&args[1..]),
        Some("lint") => lint(&args[1..]),
        _ => usage(),
    }
}

// ---------------------------------------------------------------- gate

/// Locate a sibling bench binary next to this executable.
fn sibling(name: &str) -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("executable has no parent directory")?;
    let path = dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if path.exists() {
        Ok(path)
    } else {
        Err(format!(
            "{} not found — build the whole workspace first (cargo build --release)",
            path.display()
        ))
    }
}

/// Run one bench bin and capture its stdout. `execution` is the
/// `HPCBD_EXECUTION` value, or `None` for the default (sequential).
fn run_bin(name: &str, extra: &[&str], execution: Option<&str>) -> Result<String, String> {
    let mut cmd = Command::new(sibling(name)?);
    cmd.args(extra);
    match execution {
        Some(v) => {
            cmd.env("HPCBD_EXECUTION", v);
        }
        None => {
            cmd.env_remove("HPCBD_EXECUTION");
        }
    }
    let out = cmd.output().map_err(|e| format!("spawn {name}: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "{name} exited with {}:\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    String::from_utf8(out.stdout).map_err(|_| format!("{name}: stdout is not UTF-8"))
}

fn gate(args: &[String]) -> ExitCode {
    let bless = args.iter().any(|a| a == "--bless");
    let golden_dir = flag_value(args, "--golden")
        .or_else(|| std::env::var("HPCBD_GOLDEN_DIR").ok())
        .unwrap_or_else(|| "results/golden".to_string());
    let registry = GoldenRegistry::open(&golden_dir);
    println!(
        "conformance gate: {} bins, registry at {golden_dir}{}",
        BINS.len(),
        if bless { " (blessing)" } else { "" }
    );

    let mut failures = 0u32;
    fn check(registry: &GoldenRegistry, failures: &mut u32, name: &str, output: &str, label: &str) {
        match registry.check(name, output) {
            Ok(GoldenStatus::Match) => println!("  PASS {label}"),
            Ok(GoldenStatus::Missing) => {
                *failures += 1;
                println!("  FAIL {label}: no golden pinned (run `conformance gate --bless`)");
            }
            Ok(GoldenStatus::Mismatch { diag }) => {
                *failures += 1;
                println!("  FAIL {label}:");
                for line in diag.lines() {
                    println!("       {line}");
                }
            }
            Err(e) => {
                *failures += 1;
                println!("  FAIL {label}: registry I/O error: {e}");
            }
        }
    }

    for (name, extra) in BINS {
        match run_bin(name, extra, None) {
            Ok(output) => {
                if bless {
                    match registry.bless(name, &output) {
                        Ok(()) => println!("  BLESS {name}"),
                        Err(e) => {
                            failures += 1;
                            println!("  FAIL {name}: bless: {e}");
                        }
                    }
                } else {
                    check(&registry, &mut failures, name, &output, name);
                }
            }
            Err(e) => {
                failures += 1;
                println!("  FAIL {name}: {e}");
            }
        }
    }

    // Cross-mode: the same goldens must reproduce under the parallel
    // engine — goldens double as cross-mode determinism oracles.
    if !bless {
        for name in CROSS_MODE {
            let extra = BINS
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| *e)
                .unwrap();
            match run_bin(name, extra, Some("parallel:4")) {
                Ok(output) => check(
                    &registry,
                    &mut failures,
                    name,
                    &output,
                    &format!("{name} [parallel:4]"),
                ),
                Err(e) => {
                    failures += 1;
                    println!("  FAIL {name} [parallel:4]: {e}");
                }
            }
        }

        // Phase-attributed reports must be byte-identical across modes.
        match report_cross_mode() {
            Ok(()) => println!("  PASS fig6 report [sequential == parallel:4]"),
            Err(e) => {
                failures += 1;
                println!("  FAIL fig6 report cross-mode:");
                for line in e.lines() {
                    println!("       {line}");
                }
            }
        }
    }

    if failures == 0 {
        println!("conformance gate: clean");
        ExitCode::SUCCESS
    } else {
        println!("conformance gate: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

/// Run `fig6 --quick --report` under both execution modes and
/// byte-compare the two `hpcbd.report.v1` JSON documents.
fn report_cross_mode() -> Result<(), String> {
    let tmp = std::env::temp_dir();
    let seq_path = tmp.join(format!("hpcbd-conf-{}-seq.json", std::process::id()));
    let par_path = tmp.join(format!("hpcbd-conf-{}-par.json", std::process::id()));
    let result = (|| {
        run_bin(
            "fig6",
            &["--quick", "--report", &seq_path.display().to_string()],
            None,
        )?;
        run_bin(
            "fig6",
            &["--quick", "--report", &par_path.display().to_string()],
            Some("parallel:4"),
        )?;
        let seq = std::fs::read_to_string(&seq_path).map_err(|e| format!("read report: {e}"))?;
        let par = std::fs::read_to_string(&par_path).map_err(|e| format!("read report: {e}"))?;
        if seq == par {
            Ok(())
        } else {
            Err(match hpcbd_obs::first_divergence(&seq, &par) {
                Some(d) => d.render(),
                None => "reports differ only in trailing whitespace".to_string(),
            })
        }
    })();
    let _ = std::fs::remove_file(&seq_path);
    let _ = std::fs::remove_file(&par_path);
    result
}

// ------------------------------------------------------- explore / lint

/// The pipelines the explorer and lint cover: the reduce collective
/// sweep (fig3), the iterative PageRank pipeline (fig6), and an
/// adversarial faulty workload (crash + straggler + degraded link +
/// message drops). Small configurations — each must be cheap enough to
/// re-run dozens of times.
type Pipeline = (&'static str, fn());

fn pipelines(filter: &str) -> Result<Vec<Pipeline>, ExitCode> {
    let all: Vec<Pipeline> = vec![
        ("fig3", || {
            bench_reduce::figure3(Placement::new(2, 4), &[1usize, 4096], 3);
        }),
        ("fig6", || {
            figure6(&PagerankInput::small(), &[1u32, 2], 4);
        }),
        ("fault", fault_pipeline),
    ];
    if filter == "all" {
        return Ok(all);
    }
    let picked: Vec<_> = all.into_iter().filter(|(n, _)| *n == filter).collect();
    if picked.is_empty() {
        eprintln!("unknown pipeline `{filter}` (expected fig3, fig6, fault or all)");
        return Err(ExitCode::from(2));
    }
    Ok(picked)
}

/// The adversarial faulty workload from the tier-1 determinism suite:
/// a node crash under a deadline-looped sink, a permanent straggler, a
/// degraded link, and heavy message drops, all in one plan.
fn fault_pipeline() {
    use hpcbd_simnet::{
        FaultPlan, MatchSpec, NodeId, Payload, Pid, Sim, SimDuration, SimTime, Topology, Transport,
        Work,
    };
    let mut sim = Sim::new(Topology::comet(3));
    sim.set_fault_plan(
        FaultPlan::new(99)
            .crash_node(NodeId(1), SimTime(40_000_000))
            .slow_node(NodeId(2), SimTime(0), SimTime(u64::MAX), 3.0)
            .degrade_link(NodeId(0), NodeId(2), SimTime(0), SimTime(u64::MAX), 2.5)
            .drop_messages(100_000),
    );
    let sink = sim.spawn(NodeId(1), "sink".to_string(), move |ctx| {
        let crash = ctx.node_crash_time();
        let mut seen = 0u64;
        while let Ok(m) = ctx.recv_deadline(MatchSpec::tag(9), crash) {
            seen += m.bytes;
        }
        seen
    });
    let n = 4u32;
    for i in 0..n {
        let node = NodeId(i % 3);
        sim.spawn(node, format!("w{i}"), move |ctx| {
            let tr = Transport::ipoib_socket();
            let me = ctx.pid();
            let right = Pid(1 + (me.0 % n));
            let mut acc = 0u64;
            for round in 0..6u64 {
                ctx.compute(Work::new(2.0e6 * (1.0 + me.0 as f64), 64.0), 1.0);
                ctx.send(sink, 9, 256, Payload::Empty, &tr);
                ctx.send(right, 7, 128 + 64 * round, Payload::value(round), &tr);
                let m = ctx.recv(MatchSpec::tag(7));
                if let Payload::Value(v) = &m.payload {
                    acc += v.downcast_ref::<u64>().unwrap() + m.bytes;
                }
                if ctx
                    .recv_timeout(MatchSpec::tag(55), SimDuration::from_micros(40))
                    .is_err()
                {
                    acc += 1;
                }
            }
            acc
        });
    }
    sim.run();
}

fn explore(args: &[String]) -> ExitCode {
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| parse_u64(&v))
        .unwrap_or(0xC0FFEE);
    let schedules: usize = flag_value(args, "--schedules")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let threads: usize = flag_value(args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let filter = flag_value(args, "--pipeline").unwrap_or_else(|| "all".to_string());
    let repro_out = flag_value(args, "--repro-out");
    let pipes = match pipelines(&filter) {
        Ok(p) => p,
        Err(code) => return code,
    };

    println!(
        "conformance explore: seed={seed:#x} schedules={schedules} threads={threads} \
         pipelines={filter}"
    );
    for (name, workload) in pipes {
        let report = Explorer::new(seed)
            .schedules(schedules)
            .threads(threads)
            .explore(workload);
        match &report.divergence {
            None => println!(
                "  PASS {name}: {} perturbed schedule(s), oracle sha256={}",
                report.schedules_run, report.oracle_digest
            ),
            Some(d) => {
                println!(
                    "  FAIL {name} after {} schedule(s):\n{}",
                    report.schedules_run,
                    d.render()
                );
                if let Some(path) = &repro_out {
                    let repro = format!(
                        "hpcbd conformance divergence repro\n\
                         pipeline:  {name}\n\
                         command:   conformance explore --pipeline {name} --seed {seed:#x} \
                         --schedules {schedules} --threads {threads}\n\
                         oracle sha256: {}\n\n{}",
                        report.oracle_digest,
                        d.render()
                    );
                    match std::fs::write(path, repro) {
                        Ok(()) => println!("  repro written to {path}"),
                        Err(e) => eprintln!("  failed to write repro {path}: {e}"),
                    }
                }
                return ExitCode::FAILURE;
            }
        }
    }
    println!("conformance explore: clean");
    ExitCode::SUCCESS
}

fn lint(args: &[String]) -> ExitCode {
    let filter = flag_value(args, "--pipeline").unwrap_or_else(|| "all".to_string());
    let pipes = match pipelines(&filter) {
        Ok(p) => p,
        Err(code) => return code,
    };
    println!("conformance lint: pipelines={filter}");
    for (name, workload) in pipes {
        let report = lint_workload(workload);
        match &report.divergence {
            None => println!("  PASS {name}: {} condition(s)", report.conditions.len()),
            Some(d) => {
                println!("  FAIL {name}:\n{}", d.render());
                return ExitCode::FAILURE;
            }
        }
    }
    println!("conformance lint: clean");
    ExitCode::SUCCESS
}

/// Parse decimal or `0x`-prefixed hex.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
