//! `conformance` — the determinism gate CI actually runs.
//!
//! Four subcommands (see DESIGN.md §11 and §13 for the underlying
//! model):
//!
//! * `conformance gate [--bless] [--golden DIR]` — recompute every
//!   bench bin's `--quick` output by invoking the sibling release
//!   binaries, diff each against the golden registry pinned under
//!   `results/golden/`, re-run a subset in parallel execution mode
//!   against the *same* goldens (cross-mode coverage), and byte-compare
//!   phase-attributed JSON reports across modes. `--bless` re-pins the
//!   registry after an intentional behaviour change; the PR diff then
//!   shows exactly which table rows moved.
//! * `conformance explore [--seed N] [--schedules N] [--threads N]
//!   [--speculative] [--pipeline fig3|fig6|fault|all]
//!   [--repro-out PATH]` — run the schedule-perturbation explorer
//!   (`hpcbd-check`) over representative pipelines; `--speculative`
//!   drives the perturbed runs under the Time Warp engine; on
//!   divergence, write a replayable repro file and fail.
//! * `conformance lint [--pipeline ...]` — run the determinism lint
//!   matrix (thread sweep, speculative sweep, shuffled polling,
//!   allocator poisoning) over the same pipelines.
//! * `conformance campaign [--seed N] [--campaigns N] [--plan-out PATH]`
//!   — run the seeded fault-campaign explorer (`hpcbd-check`): first a
//!   self-test that plants [`hpcbd_minimpi::RecoveryBug`] and demands
//!   the harness catch the silent corruption (with a shrunk minimal
//!   plan), then N adversarial campaigns per runtime (MPI, SHMEM,
//!   Spark) under every execution mode (sequential, parallel,
//!   speculative), each of which must end digest-equal to the
//!   fault-free oracle or in a structured abort.
//!
//! Exit status is the gate verdict: 0 clean, 1 divergence/mismatch,
//! 2 usage or environment error.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use hpcbd_check::{lint_workload, Explorer, GoldenRegistry, GoldenStatus};
use hpcbd_cluster::Placement;
use hpcbd_core::bench_pagerank::{figure6, PagerankInput};
use hpcbd_core::bench_reduce;

/// Every bench bin the golden registry pins, with the argument set that
/// makes its output deterministic. `bench` needs `--digests` because its
/// normal output is wall-clock timings.
const BINS: &[(&str, &[&str])] = &[
    ("table1", &["--quick"]),
    ("fig3", &["--quick"]),
    ("table2", &["--quick"]),
    ("fig4", &["--quick"]),
    ("fig6", &["--quick"]),
    ("fig7", &["--quick"]),
    ("table3", &["--quick"]),
    ("ablation_persist", &["--quick"]),
    ("ablation_replication", &["--quick"]),
    ("ablation_rdma_all", &["--quick"]),
    ("ablation_fault", &["--quick"]),
    ("ablation_fault_sweep", &["--quick"]),
    ("ablation_shmem_pagerank", &["--quick"]),
    ("ablation_offload", &["--quick"]),
    ("ablation_queries", &["--quick"]),
    ("ablation_seismic", &["--quick"]),
    ("bench", &["--quick", "--digests"]),
    ("bench_datacenter", &["--quick"]),
];

/// Bins additionally re-run under `HPCBD_EXECUTION=parallel:4` and
/// `HPCBD_EXECUTION=speculative:4` against the same goldens: a cheap
/// cross-mode determinism check on the two pipelines that stress the
/// scheduler hardest (iterative allreduce, fault recovery). The
/// speculative runs are the gate's Time Warp coverage: optimistic
/// commits and rollbacks must leave every golden byte untouched.
const CROSS_MODE: &[&str] = &["fig6", "ablation_fault_sweep", "bench_datacenter"];
const CROSS_MODE_EXECUTIONS: &[&str] = &["parallel:4", "speculative:4"];

fn usage() -> ExitCode {
    eprintln!(
        "usage: conformance <gate|explore|lint|campaign> [options]\n\
         \n\
         gate     [--bless] [--golden DIR]\n\
         explore  [--seed N] [--schedules N] [--threads N] [--speculative]\n\
         \x20        [--pipeline fig3|fig6|fault|all] [--repro-out PATH]\n\
         lint     [--pipeline fig3|fig6|fault|all]\n\
         campaign [--seed N] [--campaigns N] [--plan-out PATH]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gate") => gate(&args[1..]),
        Some("explore") => explore(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        _ => usage(),
    }
}

// ---------------------------------------------------------------- gate

/// Locate a sibling bench binary next to this executable.
fn sibling(name: &str) -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("executable has no parent directory")?;
    let path = dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if path.exists() {
        Ok(path)
    } else {
        Err(format!(
            "{} not found — build the whole workspace first (cargo build --release)",
            path.display()
        ))
    }
}

/// Run one bench bin and capture its stdout. `execution` is the
/// `HPCBD_EXECUTION` value, or `None` for the default (sequential).
fn run_bin(name: &str, extra: &[&str], execution: Option<&str>) -> Result<String, String> {
    let mut cmd = Command::new(sibling(name)?);
    cmd.args(extra);
    match execution {
        Some(v) => {
            cmd.env("HPCBD_EXECUTION", v);
        }
        None => {
            cmd.env_remove("HPCBD_EXECUTION");
        }
    }
    let out = cmd.output().map_err(|e| format!("spawn {name}: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "{name} exited with {}:\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    String::from_utf8(out.stdout).map_err(|_| format!("{name}: stdout is not UTF-8"))
}

fn gate(args: &[String]) -> ExitCode {
    let bless = args.iter().any(|a| a == "--bless");
    let golden_dir = flag_value(args, "--golden")
        .or_else(|| std::env::var("HPCBD_GOLDEN_DIR").ok())
        .unwrap_or_else(|| "results/golden".to_string());
    let registry = GoldenRegistry::open(&golden_dir);
    println!(
        "conformance gate: {} bins, registry at {golden_dir}{}",
        BINS.len(),
        if bless { " (blessing)" } else { "" }
    );

    let mut failures = 0u32;
    fn check(registry: &GoldenRegistry, failures: &mut u32, name: &str, output: &str, label: &str) {
        match registry.check(name, output) {
            Ok(GoldenStatus::Match) => println!("  PASS {label}"),
            Ok(GoldenStatus::Missing) => {
                *failures += 1;
                println!("  FAIL {label}: no golden pinned (run `conformance gate --bless`)");
            }
            Ok(GoldenStatus::Mismatch { diag }) => {
                *failures += 1;
                println!("  FAIL {label}:");
                for line in diag.lines() {
                    println!("       {line}");
                }
            }
            Err(e) => {
                *failures += 1;
                println!("  FAIL {label}: registry I/O error: {e}");
            }
        }
    }

    for (name, extra) in BINS {
        match run_bin(name, extra, None) {
            Ok(output) => {
                if bless {
                    match registry.bless(name, &output) {
                        Ok(()) => println!("  BLESS {name}"),
                        Err(e) => {
                            failures += 1;
                            println!("  FAIL {name}: bless: {e}");
                        }
                    }
                } else {
                    check(&registry, &mut failures, name, &output, name);
                }
            }
            Err(e) => {
                failures += 1;
                println!("  FAIL {name}: {e}");
            }
        }
    }

    // Cross-mode: the same goldens must reproduce under the parallel
    // engine — goldens double as cross-mode determinism oracles.
    if !bless {
        for name in CROSS_MODE {
            let extra = BINS
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| *e)
                .unwrap();
            for exec in CROSS_MODE_EXECUTIONS {
                match run_bin(name, extra, Some(exec)) {
                    Ok(output) => check(
                        &registry,
                        &mut failures,
                        name,
                        &output,
                        &format!("{name} [{exec}]"),
                    ),
                    Err(e) => {
                        failures += 1;
                        println!("  FAIL {name} [{exec}]: {e}");
                    }
                }
            }
        }

        // Phase-attributed reports must be byte-identical across modes.
        for exec in CROSS_MODE_EXECUTIONS {
            match report_cross_mode(exec) {
                Ok(()) => println!("  PASS fig6 report [sequential == {exec}]"),
                Err(e) => {
                    failures += 1;
                    println!("  FAIL fig6 report cross-mode [{exec}]:");
                    for line in e.lines() {
                        println!("       {line}");
                    }
                }
            }
        }
    }

    if failures == 0 {
        println!("conformance gate: clean");
        ExitCode::SUCCESS
    } else {
        println!("conformance gate: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

/// Run `fig6 --quick --report` sequentially and under `exec`, and
/// byte-compare the two `hpcbd.report.v1` JSON documents.
fn report_cross_mode(exec: &str) -> Result<(), String> {
    let tmp = std::env::temp_dir();
    let tag = exec.replace(':', "-");
    let seq_path = tmp.join(format!("hpcbd-conf-{}-seq.json", std::process::id()));
    let par_path = tmp.join(format!("hpcbd-conf-{}-{tag}.json", std::process::id()));
    let result = (|| {
        run_bin(
            "fig6",
            &["--quick", "--report", &seq_path.display().to_string()],
            None,
        )?;
        run_bin(
            "fig6",
            &["--quick", "--report", &par_path.display().to_string()],
            Some(exec),
        )?;
        let seq = std::fs::read_to_string(&seq_path).map_err(|e| format!("read report: {e}"))?;
        let par = std::fs::read_to_string(&par_path).map_err(|e| format!("read report: {e}"))?;
        if seq == par {
            Ok(())
        } else {
            Err(match hpcbd_obs::first_divergence(&seq, &par) {
                Some(d) => d.render(),
                None => "reports differ only in trailing whitespace".to_string(),
            })
        }
    })();
    let _ = std::fs::remove_file(&seq_path);
    let _ = std::fs::remove_file(&par_path);
    result
}

// ------------------------------------------------------- explore / lint

/// The pipelines the explorer and lint cover: the reduce collective
/// sweep (fig3), the iterative PageRank pipeline (fig6), and an
/// adversarial faulty workload (crash + straggler + degraded link +
/// message drops). Small configurations — each must be cheap enough to
/// re-run dozens of times.
type Pipeline = (&'static str, fn());

fn pipelines(filter: &str) -> Result<Vec<Pipeline>, ExitCode> {
    let all: Vec<Pipeline> = vec![
        ("fig3", || {
            bench_reduce::figure3(Placement::new(2, 4), &[1usize, 4096], 3);
        }),
        ("fig6", || {
            figure6(&PagerankInput::small(), &[1u32, 2], 4);
        }),
        ("fault", fault_pipeline),
    ];
    if filter == "all" {
        return Ok(all);
    }
    let picked: Vec<_> = all.into_iter().filter(|(n, _)| *n == filter).collect();
    if picked.is_empty() {
        eprintln!("unknown pipeline `{filter}` (expected fig3, fig6, fault or all)");
        return Err(ExitCode::from(2));
    }
    Ok(picked)
}

/// The adversarial faulty workload from the tier-1 determinism suite:
/// a node crash under a deadline-looped sink, a permanent straggler, a
/// degraded link, and heavy message drops, all in one plan.
fn fault_pipeline() {
    use hpcbd_simnet::{
        FaultPlan, MatchSpec, NodeId, Payload, Pid, Sim, SimDuration, SimTime, Topology, Transport,
        Work,
    };
    let mut sim = Sim::new(Topology::comet(3));
    sim.set_fault_plan(
        FaultPlan::new(99)
            .crash_node(NodeId(1), SimTime(40_000_000))
            .slow_node(NodeId(2), SimTime(0), SimTime(u64::MAX), 3.0)
            .degrade_link(NodeId(0), NodeId(2), SimTime(0), SimTime(u64::MAX), 2.5)
            .drop_messages(100_000),
    );
    let sink = sim.spawn(NodeId(1), "sink".to_string(), move |ctx| {
        let crash = ctx.node_crash_time();
        let mut seen = 0u64;
        while let Ok(m) = ctx.recv_deadline(MatchSpec::tag(9), crash) {
            seen += m.bytes;
        }
        seen
    });
    let n = 4u32;
    for i in 0..n {
        let node = NodeId(i % 3);
        sim.spawn(node, format!("w{i}"), move |ctx| {
            let tr = Transport::ipoib_socket();
            let me = ctx.pid();
            let right = Pid(1 + (me.0 % n));
            let mut acc = 0u64;
            for round in 0..6u64 {
                ctx.compute(Work::new(2.0e6 * (1.0 + me.0 as f64), 64.0), 1.0);
                ctx.send(sink, 9, 256, Payload::Empty, &tr);
                ctx.send(right, 7, 128 + 64 * round, Payload::value(round), &tr);
                let m = ctx.recv(MatchSpec::tag(7));
                if let Payload::Value(v) = &m.payload {
                    acc += v.downcast_ref::<u64>().unwrap() + m.bytes;
                }
                if ctx
                    .recv_timeout(MatchSpec::tag(55), SimDuration::from_micros(40))
                    .is_err()
                {
                    acc += 1;
                }
            }
            acc
        });
    }
    sim.run();
}

fn explore(args: &[String]) -> ExitCode {
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| parse_u64(&v))
        .unwrap_or(0xC0FFEE);
    let schedules: usize = flag_value(args, "--schedules")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let threads: usize = flag_value(args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let speculative = args.iter().any(|a| a == "--speculative");
    let filter = flag_value(args, "--pipeline").unwrap_or_else(|| "all".to_string());
    let repro_out = flag_value(args, "--repro-out");
    let pipes = match pipelines(&filter) {
        Ok(p) => p,
        Err(code) => return code,
    };

    println!(
        "conformance explore: seed={seed:#x} schedules={schedules} threads={threads} \
         pipelines={filter}{}",
        if speculative { " (speculative)" } else { "" }
    );
    for (name, workload) in pipes {
        let report = Explorer::new(seed)
            .schedules(schedules)
            .threads(threads)
            .speculative(speculative)
            .explore(workload);
        match &report.divergence {
            None => println!(
                "  PASS {name}: {} perturbed schedule(s), oracle sha256={}",
                report.schedules_run, report.oracle_digest
            ),
            Some(d) => {
                println!(
                    "  FAIL {name} after {} schedule(s):\n{}",
                    report.schedules_run,
                    d.render()
                );
                if let Some(path) = &repro_out {
                    let repro = format!(
                        "hpcbd conformance divergence repro\n\
                         pipeline:  {name}\n\
                         command:   conformance explore --pipeline {name} --seed {seed:#x} \
                         --schedules {schedules} --threads {threads}{}\n\
                         oracle sha256: {}\n\n{}",
                        if speculative { " --speculative" } else { "" },
                        report.oracle_digest,
                        d.render()
                    );
                    match std::fs::write(path, repro) {
                        Ok(()) => println!("  repro written to {path}"),
                        Err(e) => eprintln!("  failed to write repro {path}: {e}"),
                    }
                }
                return ExitCode::FAILURE;
            }
        }
    }
    println!("conformance explore: clean");
    ExitCode::SUCCESS
}

fn lint(args: &[String]) -> ExitCode {
    let filter = flag_value(args, "--pipeline").unwrap_or_else(|| "all".to_string());
    let pipes = match pipelines(&filter) {
        Ok(p) => p,
        Err(code) => return code,
    };
    println!("conformance lint: pipelines={filter}");
    for (name, workload) in pipes {
        let report = lint_workload(workload);
        match &report.divergence {
            None => println!("  PASS {name}: {} condition(s)", report.conditions.len()),
            Some(d) => {
                println!("  FAIL {name}:\n{}", d.render());
                return ExitCode::FAILURE;
            }
        }
    }
    println!("conformance lint: clean");
    ExitCode::SUCCESS
}

// ------------------------------------------------------------ campaign

/// The fault-campaign robustness gate (DESIGN.md §13). The campaign
/// *generator, classifier and shrinker* live in `hpcbd-check`
/// (dependency-light, simnet only); the concrete runtime workloads are
/// composed here, where every runtime crate is in scope.
mod campaign_workloads {
    use hpcbd_check::{classify_run, CampaignOutcome, CampaignSpace};
    use hpcbd_cluster::Placement;
    use hpcbd_minimpi::{
        mpirun_faulty, CheckpointMode, Checkpointer, FaultPolicy, RecoveryBug, ReduceOp,
    };
    use hpcbd_minshmem::{shmem_run_faulty, PeCtx, ShmemCheckpointer};
    use hpcbd_minspark::{SparkCluster, SparkConfig};
    use hpcbd_simnet::{FaultPlan, NodeId, SimDuration, SimTime, Work};

    /// A runtime under campaign test: a name, the closure that runs it
    /// under a plan, and the space of faults the generator may aim at
    /// (derived from an oracle run).
    pub struct Subject {
        /// Runtime name (`mpi`, `shmem`, `spark`).
        pub name: &'static str,
        /// Fault-free oracle result.
        pub oracle: u64,
        /// What the generator may target.
        pub space: CampaignSpace,
        run: Box<dyn Fn(&FaultPlan) -> u64>,
    }

    impl Subject {
        /// Classify one campaign run against the oracle.
        pub fn classify(&self, plan: &FaultPlan) -> CampaignOutcome {
            classify_run(&self.oracle, || (self.run)(plan))
        }
    }

    /// Iterative MPI job with asynchronous checkpointing and semantic
    /// restart; the state value is the digest. `bug` plants
    /// [`RecoveryBug::RestartUndrained`] for the harness self-test.
    fn mpi_job(
        plan: &FaultPlan,
        bug: Option<RecoveryBug>,
    ) -> (u64, SimTime, Vec<(SimTime, SimTime)>) {
        let plan = plan.clone();
        let out = mpirun_faulty(Placement::new(2, 2), plan, move |rank| {
            let work = Work::new(5.0e7, 0.0);
            let stall = SimDuration::from_secs(1);
            let mut ck = Checkpointer::new(2, 64 << 20).with_mode(CheckpointMode::Async);
            if let Some(b) = bug {
                ck = ck.with_planted_bug(b);
            }
            let mut state = 0u64;
            let mut iter = 0u32;
            while iter < 8 {
                rank.ctx().compute(work, 1.0);
                let r = rank.allreduce(ReduceOp::Sum, &[f64::from(iter + 1)]);
                state = state.wrapping_add((r[0] as u64).wrapping_mul(u64::from(iter) + 1));
                ck.after_iteration_with(rank, iter, || state);
                if ck.poll_plan_failure(
                    rank,
                    FaultPolicy::Restart {
                        relaunch_stall: stall,
                    },
                ) {
                    let resume = ck.restart_semantic(rank, stall, iter + 1);
                    state = ck.restore_payload::<u64>(resume).unwrap_or(0);
                    iter = resume;
                    continue;
                }
                iter += 1;
            }
            (state, rank.now(), ck.drain_windows())
        });
        let end = out.results.iter().map(|r| r.1).max().expect("ranks > 0");
        (out.results[0].0, end, out.results[0].2.clone())
    }

    /// The SHMEM mirror of [`mpi_job`]: state over `sum_to_all`,
    /// background drains through the symmetric heap's node disks.
    fn shmem_job(plan: &FaultPlan) -> (u64, SimTime, Vec<(SimTime, SimTime)>) {
        let plan = plan.clone();
        let out = shmem_run_faulty(Placement::new(2, 2), plan, |pe: &mut PeCtx| {
            let work = Work::new(5.0e7, 0.0);
            let stall = SimDuration::from_secs(1);
            let mut ck = ShmemCheckpointer::new(2, 64 << 20).with_mode(CheckpointMode::Async);
            let acc = pe.malloc::<f64>("campaign_acc", 1, 0.0);
            let mut state = 0u64;
            let mut iter = 0u32;
            while iter < 8 {
                pe.ctx().compute(work, 1.0);
                pe.local_write(&acc, 0, &[f64::from(iter + 1)]);
                pe.sum_to_all(&acc);
                let v = pe.local_clone(&acc)[0];
                state = state.wrapping_add((v as u64).wrapping_mul(u64::from(iter) + 1));
                ck.after_iteration_with(pe, iter, || state);
                if ck.poll_plan_failure(
                    pe,
                    FaultPolicy::Restart {
                        relaunch_stall: stall,
                    },
                ) {
                    let resume = ck.restart_semantic(pe, stall, iter + 1);
                    state = ck.restore_payload::<u64>(resume).unwrap_or(0);
                    iter = resume;
                    continue;
                }
                iter += 1;
            }
            pe.free(acc);
            (state, pe.now(), ck.drain_windows())
        });
        let end = out.results.iter().map(|r| r.1).max().expect("pes > 0");
        (out.results[0].0, end, out.results[0].2.clone())
    }

    /// Spark job whose digest folds the collected key/value pairs, so a
    /// lineage recomputation that loses or duplicates data is visible.
    fn spark_job(plan: &FaultPlan) -> (u64, SimTime) {
        let config = SparkConfig {
            executors_per_node: 1,
            task_timeout: SimDuration::from_secs(5),
            ..SparkConfig::default()
        };
        let mut cluster = SparkCluster::new(3, config);
        if !plan.is_empty() {
            cluster = cluster.faults(plan.clone());
        }
        cluster
            .run(|sc| {
                let xs = sc.parallelize((0..800u64).collect::<Vec<u64>>(), 8);
                let pairs = xs.map_with_cost(Work::new(2.0e6, 64.0), 8, |x| (x % 16, *x));
                let red = pairs.reduce_by_key(8, |a, b| a.wrapping_add(*b));
                let digest = sc
                    .collect(&red)
                    .into_iter()
                    .fold(0u64, |acc, (k, v)| acc.wrapping_mul(31).wrapping_add(k ^ v));
                (digest, sc.now())
            })
            .value
    }

    /// Build the three campaign subjects, deriving each space (horizon,
    /// protected nodes, drain windows) from a fault-free oracle run.
    pub fn subjects() -> Vec<Subject> {
        let none = FaultPlan::new(0);
        let (mpi_oracle, mpi_end, mpi_windows) = mpi_job(&none, None);
        let (shmem_oracle, shmem_end, shmem_windows) = shmem_job(&none);
        let (spark_oracle, spark_end) = spark_job(&none);
        vec![
            Subject {
                name: "mpi",
                oracle: mpi_oracle,
                space: CampaignSpace::new(2, mpi_end).with_drain_windows(mpi_windows),
                run: Box::new(|p| mpi_job(p, None).0),
            },
            Subject {
                name: "shmem",
                oracle: shmem_oracle,
                space: CampaignSpace::new(2, shmem_end).with_drain_windows(shmem_windows),
                run: Box::new(|p| shmem_job(p).0),
            },
            Subject {
                // Node 0 hosts the driver — a real SPOF the cluster
                // builder refuses to crash, so the generator must not
                // aim at it.
                name: "spark",
                oracle: spark_oracle,
                space: CampaignSpace::new(3, spark_end).protect(NodeId(0)),
                run: Box::new(|p| spark_job(p).0),
            },
        ]
    }

    /// Harness self-test: plant [`RecoveryBug::RestartUndrained`] and
    /// demand a drain-window crash be caught as a silent corruption.
    /// Returns the shrunk minimal plan description, or an error if the
    /// planted bug escaped every drain-crash campaign.
    pub fn planted_bug_self_test(seed: u64) -> Result<String, String> {
        use hpcbd_check::{generate_plan, shrink_plan, CampaignKind};
        let none = FaultPlan::new(0);
        let (oracle, end, windows) = mpi_job(&none, None);
        if windows.is_empty() {
            return Err("oracle run produced no drain windows".to_string());
        }
        let space = CampaignSpace::new(2, end).with_drain_windows(windows);
        let buggy = |plan: &FaultPlan| {
            classify_run(&oracle, || {
                mpi_job(plan, Some(RecoveryBug::RestartUndrained)).0
            })
        };
        for s in seed..seed + 8 {
            let plan = generate_plan(&space, CampaignKind::DrainCrash, s);
            if !buggy(&plan).is_violation() {
                continue;
            }
            // Caught. Shrink to the minimal plan that still trips it.
            let minimal = shrink_plan(&plan, |p| buggy(p).is_violation());
            // The unplanted runtime must survive the same minimal plan.
            return match classify_run(&oracle, || mpi_job(&minimal, None).0) {
                CampaignOutcome::OracleEqual => Ok(minimal.describe()),
                other => Err(format!(
                    "minimal plan breaks the UNPLANTED runtime too: {other:?}\n{}",
                    minimal.describe()
                )),
            };
        }
        Err("planted RestartUndrained bug escaped 8 drain-crash campaigns".to_string())
    }
}

fn campaign(args: &[String]) -> ExitCode {
    use hpcbd_check::{generate_campaigns, shrink_plan, CampaignTally};
    use hpcbd_simnet::{set_default_execution, Execution};

    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| parse_u64(&v))
        .unwrap_or(0xFA_0175);
    let count: usize = flag_value(args, "--campaigns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let plan_out = flag_value(args, "--plan-out");
    println!("conformance campaign: seed={seed:#x} campaigns={count} per runtime+mode");

    // Structured aborts and classified violations unwind through
    // catch_unwind by design; the default hook's backtrace spew for
    // each *expected* panic would drown the verdict lines.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // Self-test first: the gate is only trustworthy if it demonstrably
    // catches a planted recovery bug.
    match campaign_workloads::planted_bug_self_test(seed) {
        Ok(minimal) => {
            println!("  PASS self-test: planted RestartUndrained caught; shrunk minimal plan:");
            for line in minimal.lines() {
                println!("       {line}");
            }
        }
        Err(e) => {
            println!("  FAIL self-test: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut failures = 0u32;
    let mut artifact = String::new();
    for exec in [
        Execution::Sequential,
        Execution::Parallel { threads: 4 },
        Execution::Speculative { threads: 4 },
    ] {
        set_default_execution(exec);
        let mode = match exec {
            Execution::Sequential => "sequential",
            Execution::Parallel { .. } => "parallel:4",
            Execution::Speculative { .. } => "speculative:4",
        };
        for subject in campaign_workloads::subjects() {
            let campaigns = generate_campaigns(&subject.space, seed, count);
            let mut tally = CampaignTally::default();
            for c in &campaigns {
                let outcome = subject.classify(&c.plan);
                let shrunk = if outcome.is_violation() {
                    let minimal = shrink_plan(&c.plan, |p| subject.classify(p).is_violation());
                    Some(minimal.describe())
                } else {
                    None
                };
                tally.record(c, &outcome, shrunk.as_deref());
            }
            if tally.violations.is_empty() {
                println!(
                    "  PASS {} [{mode}]: {} campaign(s) — {} oracle-equal, {} structured abort(s)",
                    subject.name,
                    tally.total(),
                    tally.oracle_equal,
                    tally.aborts
                );
            } else {
                failures += tally.violations.len() as u32;
                for (kind, vseed, detail) in &tally.violations {
                    println!("  FAIL {} [{mode}] {kind} seed={vseed:#x}:", subject.name);
                    for line in detail.lines() {
                        println!("       {line}");
                    }
                    artifact.push_str(&format!(
                        "runtime: {}\nexecution: {mode}\nkind: {kind}\nseed: {vseed:#x}\n\
                         replay: conformance campaign --seed {vseed:#x} --campaigns 1\n\
                         {detail}\n\n",
                        subject.name
                    ));
                }
            }
        }
    }
    set_default_execution(Execution::Sequential);
    std::panic::set_hook(default_hook);

    if let (Some(path), false) = (&plan_out, artifact.is_empty()) {
        match std::fs::write(path, &artifact) {
            Ok(()) => println!("  minimal fault plan(s) written to {path}"),
            Err(e) => eprintln!("  failed to write {path}: {e}"),
        }
    }
    if failures == 0 {
        println!("conformance campaign: clean");
        ExitCode::SUCCESS
    } else {
        println!("conformance campaign: {failures} violation(s)");
        ExitCode::FAILURE
    }
}

/// Parse decimal or `0x`-prefixed hex.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
