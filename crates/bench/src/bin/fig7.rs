//! Fig. 7 — HiBench (shuffle-heavy) PageRank: Spark vs Spark-RDMA.

use hpcbd_core::bench_pagerank::{figure7, PagerankInput};

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Fig. 7 (HiBench PageRank, 1M vertices)");
    let (input, nodes, ppn) = if args.quick {
        (PagerankInput::small(), vec![1u32, 2], 4)
    } else {
        (PagerankInput::paper(), vec![1u32, 2, 4, 8], 16)
    };
    hpcbd_bench::run_with_report("fig7", &args, || {
        let table = figure7(&input, &nodes, ppn);
        println!("{table}");
        println!("shape: with heavy per-iteration shuffling, the RDMA engine wins");
        println!("and the gap grows with node count (more traffic crosses the wire).");
    });
}
