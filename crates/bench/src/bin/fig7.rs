//! Fig. 7 — HiBench (shuffle-heavy) PageRank: Spark vs Spark-RDMA.

use hpcbd_core::bench_pagerank::{figure7, PagerankInput};

fn main() {
    hpcbd_bench::banner("Fig. 7 (HiBench PageRank, 1M vertices)");
    let (input, nodes, ppn) = if hpcbd_bench::quick_mode() {
        (PagerankInput::small(), vec![1u32, 2], 4)
    } else {
        (PagerankInput::paper(), vec![1u32, 2, 4, 8], 16)
    };
    let table = figure7(&input, &nodes, ppn);
    println!("{table}");
    println!("shape: with heavy per-iteration shuffling, the RDMA engine wins");
    println!("and the gap grows with node count (more traffic crosses the wire).");
}
