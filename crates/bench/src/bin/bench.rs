//! `bench` — the simulator's wall-clock trajectory emitter.
//!
//! Times the fig3 / fig4 / fig6 pipelines (the three artifacts that
//! stress the engine hardest: many-process collectives, disk-bound
//! scans, iterative allreduce) at `--quick` and paper scale, under all
//! three execution modes (sequential, parallel, speculative), and
//! writes the measurements to `BENCH_simnet.json`. Speculative rows
//! carry the engine's optimistic commit/rollback counters so the
//! artifact attributes *why* the mode was (or wasn't) faster.
//! CI runs this and uploads the artifact so every PR leaves a data point
//! on the simulator's host-performance trajectory (ROADMAP: "as fast as
//! the hardware allows").
//!
//! Flags:
//! * `--quick` — measure only the quick-scale configurations (CI smoke).
//! * `--out PATH` — output path (default `BENCH_simnet.json`).
//! * `--digests` — skip timing entirely: run each configuration once
//!   per execution mode, assert the cross-mode digests agree, and print
//!   only the digest lines. The output is fully deterministic, which
//!   lets this bin join the golden registry the `conformance` gate
//!   checks (wall-clock numbers never could).
//!
//! Each run also records an FNV-1a digest of the produced table; the
//! emitter asserts sequential and parallel digests agree, so a
//! determinism break surfaces here as well as in the test suite.

use std::fmt::Write as _;
use std::time::Instant;

use hpcbd_cluster::Placement;
use hpcbd_core::bench_answers;
use hpcbd_core::bench_pagerank::{figure6, PagerankInput};
use hpcbd_core::bench_reduce;
use hpcbd_simnet::{set_default_execution, Execution};
use hpcbd_workloads::StackExchangeDataset;

/// FNV-1a over the produced table, so runs can be compared for
/// bit-identity across modes without storing the tables themselves.
fn digest(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Per-simulated-process memory overhead, measured as the VmHWM delta
/// across a run of `procs` trivial processes divided by `procs`. Each
/// process still gets the full treatment — a coroutine stack, a wake
/// slot, a grant — so the number tracks what a 48k-process Comet run
/// actually charges per rank. Linux-only (`/proc/self/status`); returns
/// `None` elsewhere. Must run *before* the measurement cases: VmHWM is
/// a high-water mark, so anything bigger run first would mask the delta.
fn proc_mem_probe(procs: u32) -> Option<(u64, u64)> {
    fn vm_hwm_kib() -> Option<u64> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        line.split_whitespace().nth(1)?.parse().ok()
    }
    let before = vm_hwm_kib()?;
    let nodes = 64u32;
    let mut sim = hpcbd_simnet::Sim::new(hpcbd_simnet::Topology::comet(nodes));
    for i in 0..procs {
        sim.spawn(
            hpcbd_simnet::NodeId(i % nodes),
            format!("probe-{i}"),
            |_ctx| {},
        );
    }
    sim.run();
    let after = vm_hwm_kib()?;
    let delta_kib = after.saturating_sub(before);
    Some((delta_kib, delta_kib * 1024 / procs as u64))
}

struct Measurement {
    artifact: &'static str,
    scale: &'static str,
    mode: String,
    runs: usize,
    wall_min_s: f64,
    wall_mean_s: f64,
    table_digest: u64,
    /// Speculative commits/rollbacks summed across the row's runs.
    /// Zero in non-speculative modes; wall-clock-schedule-dependent in
    /// speculative ones (attribution only — never part of a digest).
    spec_commits: u64,
    spec_rollbacks: u64,
    /// Extra JSON fields appended to the row (multi-tenant scheduler
    /// counters for the `datacenter` artifact; empty otherwise). Must
    /// start with ", " when non-empty.
    extra_json: String,
}

fn measure(
    artifact: &'static str,
    scale: &'static str,
    mode_name: &str,
    exec: Execution,
    runs: usize,
    f: &dyn Fn() -> String,
) -> Measurement {
    set_default_execution(exec);
    let _ = hpcbd_simnet::spec_counters_take();
    let mut times = Vec::with_capacity(runs);
    let mut dig = 0u64;
    for _ in 0..runs {
        let t0 = Instant::now();
        let table = f();
        times.push(t0.elapsed().as_secs_f64());
        dig = digest(&table);
    }
    let (spec_commits, spec_rollbacks) = hpcbd_simnet::spec_counters_take();
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    eprintln!(
        "  {artifact}/{scale}/{mode_name}: min {min:.3}s mean {mean:.3}s (x{runs})\
         {}",
        if spec_commits + spec_rollbacks > 0 {
            format!(" spec: {spec_commits} commit(s), {spec_rollbacks} rollback(s)")
        } else {
            String::new()
        }
    );
    Measurement {
        artifact,
        scale,
        mode: mode_name.to_string(),
        runs,
        wall_min_s: min,
        wall_mean_s: mean,
        table_digest: dig,
        spec_commits,
        spec_rollbacks,
        extra_json: String::new(),
    }
}

/// The multi-tenant counters attached to each `datacenter` row: the
/// contended section's per-queue latency quantiles, queueing delay,
/// preemption activity and SLO attainment. Deterministic (virtual-time)
/// values — identical across modes and hosts, unlike the wall clocks.
fn datacenter_extra(quick: bool) -> String {
    use hpcbd_sched::quantile_ns;
    set_default_execution(Execution::Sequential);
    let sections = hpcbd_bench::datacenter::run_all(quick);
    let (_, contended) = &sections[1];
    let mut s = String::from(", \"multi_tenant\": true, \"contended\": {\"queues\": [");
    for (i, q) in contended.stats.queues.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let attain_ppm = (q.slo_met * 1_000_000)
            .checked_div(q.completed)
            .unwrap_or(1_000_000);
        let _ = write!(
            s,
            "{{\"queue\": \"{}\", \"completed\": {}, \"p50_latency_ns\": {}, \"p99_latency_ns\": {}, \"wait_p99_ns\": {}, \"slo_attainment_ppm\": {}, \"preemptions\": {}, \"kills_sent\": {}, \"local\": {}, \"rack\": {}, \"any\": {}}}",
            q.name,
            q.completed,
            quantile_ns(&q.latency_ns, 0.5),
            quantile_ns(&q.latency_ns, 0.99),
            quantile_ns(&q.wait_ns, 0.99),
            attain_ppm,
            q.preemptions,
            q.kills_sent,
            q.local,
            q.rack,
            q.remote,
        );
    }
    let _ = write!(
        s,
        "], \"offered\": {}, \"makespan_ns\": {}}}",
        contended.offered, contended.makespan_ns
    );
    s
}

fn main() {
    let shared = hpcbd_bench::BenchArgs::parse_allowing(&[("--out", true), ("--digests", false)]);
    let quick_only = shared.quick;
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_simnet.json".to_string());

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // On a single-core host parallel mode cannot overlap compute, but we
    // still measure it (with a meaningful in-flight window) so the
    // trajectory records the mode's overhead there too.
    let threads = host_cores.max(2);

    eprintln!("hpcbd bench: host_cores={host_cores} parallel_threads={threads}");

    // The three artifact pipelines at each scale. Configurations mirror
    // the `fig3` / `fig4` / `fig6` bins exactly.
    type ArtifactFn = Box<dyn Fn() -> String>;
    let mut cases: Vec<(&'static str, &'static str, usize, ArtifactFn)> = vec![
        (
            "fig3",
            "quick",
            3,
            Box::new(|| {
                bench_reduce::figure3(Placement::new(2, 4), &[1usize, 256, 16384], 5).to_csv()
            }),
        ),
        (
            "fig4",
            "quick",
            3,
            Box::new(|| {
                let size = 4u64 << 30;
                let records = size / hpcbd_workloads::stackexchange::RECORD_BYTES;
                let ds = StackExchangeDataset::new(0xA125, size, records / 20_000);
                bench_answers::figure4(&ds, &[1u32, 2], 4).to_csv()
            }),
        ),
        (
            "fig6",
            "quick",
            3,
            Box::new(|| figure6(&PagerankInput::small(), &[1u32, 2], 4).to_csv()),
        ),
    ];
    if !quick_only {
        cases.push((
            "fig3",
            "paper",
            2,
            Box::new(|| {
                bench_reduce::figure3(Placement::new(8, 8), &bench_reduce::standard_sizes(), 20)
                    .to_csv()
            }),
        ));
        cases.push((
            "fig4",
            "paper",
            2,
            Box::new(|| {
                bench_answers::figure4(&bench_answers::dataset(), &[1u32, 2, 4, 6, 8], 8).to_csv()
            }),
        ));
        cases.push((
            "fig6",
            "paper",
            2,
            Box::new(|| figure6(&PagerankInput::paper(), &[1u32, 2, 4, 8], 16).to_csv()),
        ));
    }

    if args.iter().any(|a| a == "--digests") {
        for (artifact, scale, _runs, f) in &cases {
            set_default_execution(Execution::Sequential);
            let seq = digest(&f());
            set_default_execution(Execution::Parallel { threads });
            let par = digest(&f());
            set_default_execution(Execution::Speculative { threads });
            let spec = digest(&f());
            set_default_execution(Execution::Sequential);
            assert_eq!(
                seq, par,
                "{artifact}/{scale}: sequential and parallel tables differ — determinism break"
            );
            assert_eq!(
                seq, spec,
                "{artifact}/{scale}: sequential and speculative tables differ — determinism break"
            );
            println!("{artifact}/{scale} table_digest={seq:016x}");
        }
        return;
    }

    // Probe first (VmHWM only rises); 8192 processes is enough to
    // swamp the baseline yet costs well under a second.
    let probe_procs = 8192u32;
    let proc_mem = proc_mem_probe(probe_procs);
    match proc_mem {
        Some((delta_kib, per_proc)) => eprintln!(
            "  proc_mem: {probe_procs} procs, VmHWM delta {delta_kib} KiB, {per_proc} B/proc"
        ),
        None => eprintln!("  proc_mem: unavailable (no /proc/self/status)"),
    }

    // The multi-tenant pipeline rides along as its own rows (kept out of
    // `cases` so the `--digests` golden output is unchanged; its
    // cross-mode determinism is gated by `conformance` directly).
    let dc_cases: Vec<(&'static str, bool, usize, ArtifactFn)> = {
        let render_all = |quick: bool| -> String {
            hpcbd_bench::datacenter::run_all(quick)
                .iter()
                .map(|(name, out)| hpcbd_bench::datacenter::render(out, name))
                .collect()
        };
        let mut v: Vec<(&'static str, bool, usize, ArtifactFn)> =
            vec![("quick", true, 3, Box::new(move || render_all(true)))];
        if !quick_only {
            v.push(("paper", false, 2, Box::new(move || render_all(false))));
        }
        v
    };

    let mut measurements = Vec::new();
    // Note: `--report` forces tracing on inside the engine, perturbing
    // the wall-clock numbers — use it to inspect phases, not to compare
    // trajectories.
    hpcbd_bench::run_with_report("bench", &shared, || {
        for (artifact, scale, runs, f) in &cases {
            let seq = measure(
                artifact,
                scale,
                "sequential",
                Execution::Sequential,
                *runs,
                f,
            );
            let par = measure(
                artifact,
                scale,
                &format!("parallel:{threads}"),
                Execution::Parallel { threads },
                *runs,
                f,
            );
            let spec = measure(
                artifact,
                scale,
                &format!("speculative:{threads}"),
                Execution::Speculative { threads },
                *runs,
                f,
            );
            assert_eq!(
                seq.table_digest, par.table_digest,
                "{artifact}/{scale}: sequential and parallel tables differ — determinism break"
            );
            assert_eq!(
                seq.table_digest, spec.table_digest,
                "{artifact}/{scale}: sequential and speculative tables differ — determinism break"
            );
            measurements.push(seq);
            measurements.push(par);
            measurements.push(spec);
        }
        for (scale, quick, runs, f) in &dc_cases {
            let extra = datacenter_extra(*quick);
            let seq = measure(
                "datacenter",
                scale,
                "sequential",
                Execution::Sequential,
                *runs,
                f,
            );
            let par = measure(
                "datacenter",
                scale,
                &format!("parallel:{threads}"),
                Execution::Parallel { threads },
                *runs,
                f,
            );
            let spec = measure(
                "datacenter",
                scale,
                &format!("speculative:{threads}"),
                Execution::Speculative { threads },
                *runs,
                f,
            );
            assert_eq!(
                seq.table_digest, par.table_digest,
                "datacenter/{scale}: sequential and parallel tables differ — determinism break"
            );
            assert_eq!(
                seq.table_digest, spec.table_digest,
                "datacenter/{scale}: sequential and speculative tables differ — determinism break"
            );
            for mut m in [seq, par, spec] {
                m.extra_json = extra.clone();
                measurements.push(m);
            }
        }
    });
    set_default_execution(Execution::Sequential);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": 1,\n");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"parallel_threads\": {threads},");
    // Top-level, not a results row: the trajectory gate iterates
    // `results` expecting wall-clock fields.
    match proc_mem {
        Some((delta_kib, per_proc)) => {
            let _ = writeln!(
                json,
                "  \"proc_mem\": {{\"procs\": {probe_procs}, \"vm_hwm_delta_kib\": {delta_kib}, \"per_proc_bytes\": {per_proc}}},"
            );
        }
        None => json.push_str("  \"proc_mem\": null,\n"),
    }
    json.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"artifact\": \"{}\", \"scale\": \"{}\", \"mode\": \"{}\", \"runs\": {}, \"wall_min_s\": {:.6}, \"wall_mean_s\": {:.6}, \"table_digest\": \"{:016x}\", \"spec_commits\": {}, \"spec_rollbacks\": {}{}}}",
            m.artifact, m.scale, m.mode, m.runs, m.wall_min_s, m.wall_mean_s, m.table_digest,
            m.spec_commits, m.spec_rollbacks, m.extra_json
        );
        json.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_simnet.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
