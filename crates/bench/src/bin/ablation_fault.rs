//! Ablation A4 — fault tolerance (Sec. VI-D): Spark's lineage
//! recomputation vs the HPC checkpoint/restart protocol, on the same
//! iterative workload with one injected failure.

use hpcbd_cluster::Placement;
use hpcbd_core::bench_pagerank::{PagerankInput, SparkVariant};
use hpcbd_minimpi::{mpirun, Checkpointer, ReduceOp};
use hpcbd_minspark::{ShuffleEngine, SparkCluster, SparkConfig, StorageLevel};
use hpcbd_simnet::{SimDuration, SimTime, Work};
use std::sync::Arc;

/// MPI iterative job with coordinated checkpoints; rank behavior after
/// the "failure" at iteration `fail_iter`: whole job restarts from the
/// last checkpoint (relaunch stall + state reload + replay).
fn mpi_with_checkpoint(
    placement: Placement,
    iters: u32,
    interval: u32,
    fail_iter: Option<u32>,
) -> f64 {
    let out = mpirun(placement, move |rank| {
        let state_bytes = 24u64 << 20;
        let mut ck = Checkpointer::new(interval, state_bytes);
        let per_iter = Work::new(2.0e8, 8.0e8);
        let mut iter = 0;
        let mut failed = false;
        while iter < iters {
            rank.ctx().compute(per_iter, 1.0);
            let _ = rank.allreduce(ReduceOp::Sum, &[iter as f64]);
            ck.after_iteration(rank, iter);
            if Some(iter) == fail_iter && !failed {
                failed = true;
                // Whole-job restart: relaunch + reload + replay.
                iter = ck.restart(rank, SimDuration::from_secs(4));
                continue;
            }
            iter += 1;
        }
        rank.now()
    });
    out.results
        .iter()
        .map(|t| t.as_secs_f64())
        .fold(0.0, f64::max)
}

/// Spark PageRank with one executor killed mid-run: the driver detects
/// the loss, invalidates its state, and re-executes only the lost
/// lineage.
fn spark_with_executor_loss(
    input: &PagerankInput,
    placement: Placement,
    fail_at: Option<SimTime>,
) -> f64 {
    let input = input.clone();
    let parts = 32u32;
    let mut config = SparkConfig::with_shuffle(ShuffleEngine::Socket);
    config.executors_per_node = placement.per_node;
    config.task_timeout = SimDuration::from_secs(10);
    if let Some(t) = fail_at {
        config.fail_executor = Some((1, t));
    }
    let file = hpcbd_workloads::graph::EdgeListFile::new((*input.graph).clone(), input.scale);
    let logical_size = file.logical_size();
    SparkCluster::new(placement.nodes, config)
        .with_hdfs(hpcbd_minhdfs::HdfsConfig::default())
        .hdfs_file("/graph/edges", logical_size, None)
        .run(move |sc| {
            let t0 = sc.now();
            let edges = sc.hadoop_file("/graph/edges", Arc::new(file));
            let links = edges
                .group_by_key(parts)
                .persist(StorageLevel::MemoryAndDisk);
            let mut ranks = links.map_values(|_| 1.0f64);
            for _ in 0..input.iters {
                let contribs = links.join(&ranks, parts).values().flat_map_with_cost(
                    hpcbd_simnet::Work::new(8.0, 48.0),
                    24,
                    |(d, r)| {
                        let share = r / d.len() as f64;
                        d.iter().map(|x| (*x, share)).collect()
                    },
                );
                ranks = contribs
                    .reduce_by_key(parts, |a, b| a + b)
                    .map_values(|c| 0.15 + 0.85 * c);
            }
            let _ = sc.count(&ranks);
            (sc.now() - t0).as_secs_f64()
        })
        .value
}

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Ablation A4 (lineage vs checkpoint/restart)");
    let (input, placement, iters) = if args.quick {
        (PagerankInput::small(), Placement::new(2, 4), 6u32)
    } else {
        (PagerankInput::paper(), Placement::new(4, 8), 10)
    };
    let _ = SparkVariant::BigDataBenchTuned;
    hpcbd_bench::run_with_report("ablation_fault", &args, || {
        let spark_clean = spark_with_executor_loss(&input, placement, None);
        // Kill executor 1 midway through the clean runtime (plus the ~0.9s
        // app startup that precedes the measured span).
        let fail_at = SimTime(((0.9 + spark_clean * 0.5) * 1e9) as u64);
        let spark_fault = spark_with_executor_loss(&input, placement, Some(fail_at));
        let mpi_clean = mpi_with_checkpoint(placement, iters, 3, None);
        let mpi_fault = mpi_with_checkpoint(placement, iters, 3, Some(iters / 2));
        let mpi_no_ck_clean = mpi_with_checkpoint(placement, iters, 0, None);
        println!("Spark PageRank          clean: {spark_clean:.3}s   with executor loss: {spark_fault:.3}s  (+{:.0}%)",
            (spark_fault / spark_clean - 1.0) * 100.0);
        println!("MPI iterative           clean: {mpi_clean:.3}s   with rank failure:  {mpi_fault:.3}s  (+{:.0}%)",
            (mpi_fault / mpi_clean - 1.0) * 100.0);
        println!(
            "MPI without checkpoints clean: {mpi_no_ck_clean:.3}s  (checkpoint overhead {:.0}%)",
            (mpi_clean / mpi_no_ck_clean - 1.0) * 100.0
        );
        println!();
        println!("shape: Spark recovers by recomputing only the lost partitions");
        println!("(lineage), paying nothing in the failure-free run; MPI pays the");
        println!("checkpoint tax on every run and replays whole iterations on");
        println!("failure.");
    });
}
