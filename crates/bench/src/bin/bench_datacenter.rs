//! The "busy datacenter day": all five runtimes' workloads replayed
//! concurrently through the multi-tenant scheduler (DESIGN.md §16).
//!
//! Three sections run back to back — an idle baseline, the diurnal rush
//! over the batch backbone, and the same rush with preemption disabled.
//! The table shows what multi-tenancy does to each queue's latency
//! distribution and what preemption buys the interactive tier. With
//! `--telemetry-out` the per-queue latency histograms, windowed
//! quantiles and SLO-attainment records land in the report JSON, which
//! is what the CI `datacenter-smoke` job asserts on.

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("busy datacenter day (multi-tenant scheduler)");
    hpcbd_bench::run_with_report("bench_datacenter", &args, || {
        for (name, out) in hpcbd_bench::datacenter::run_all(args.quick) {
            println!();
            print!("{}", hpcbd_bench::datacenter::render(&out, name));
        }
        println!();
        println!("shape: the rush inflates the interactive tail via queueing; with");
        println!("preemption the scheduler reclaims over-share batch slots, without");
        println!("it the interactive queue waits out whole batch tasks.");
    });
}
