//! Ablation A3 — the paper's future direction (Sec. VI-C): "implement
//! all Spark communications using RDMA and not only the data shuffling
//! operations". Moves the driver<->executor control plane onto verbs.

use hpcbd_cluster::Placement;
use hpcbd_minspark::{ShuffleEngine, SparkCluster, SparkConfig};

fn run(placement: Placement, rdma_control: bool) -> f64 {
    let mut config = SparkConfig::with_shuffle(ShuffleEngine::Rdma);
    config.executors_per_node = placement.per_node;
    config.rdma_control_plane = rdma_control;
    let total = placement.total() as usize * 4096;
    let parts = placement.total();
    SparkCluster::new(placement.nodes, config)
        .run(move |sc| {
            let rdd = sc.parallelize_with_bytes(vec![1.0f32; total], parts, 4);
            let t0 = sc.now();
            let _ = sc.reduce(&rdd, |a, b| a + b);
            (sc.now() - t0).as_secs_f64()
        })
        .value
}

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Ablation A3 (RDMA for control plane too)");
    let placement = if args.quick {
        Placement::new(2, 4)
    } else {
        Placement::new(8, 8)
    };
    hpcbd_bench::run_with_report("ablation_rdma_all", &args, || {
        let sockets = run(placement, false);
        let rdma = run(placement, true);
        println!("reduce action, control on java sockets: {sockets:.4}s");
        println!("reduce action, control on verbs:        {rdma:.4}s");
        println!("speedup: {:.2}x", sockets / rdma);
        println!();
        println!("shape: on driver-bound jobs (Fig. 3's regime) moving the control");
        println!("plane to RDMA is exactly where the remaining time goes — the");
        println!("paper's proposed future work pays off most there.");
    });
}
