//! Table II — parallel file read: Spark-on-HDFS / Spark-on-local / MPI.

use hpcbd_cluster::Placement;
use hpcbd_core::bench_fileread;

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Table II (parallel file read)");
    let (placement, sizes) = if args.quick {
        (Placement::new(2, 4), vec![1u64 << 30, 4 << 30])
    } else {
        (Placement::new(8, 8), vec![8u64 << 30, 80 << 30])
    };
    hpcbd_bench::run_with_report("table2", &args, || {
        let table = bench_fileread::table2(placement, &sizes);
        println!("{table}");
        println!("shape: MPI fastest (raw parallel I/O); Spark-on-local next (JVM");
        println!("parse path); Spark-on-HDFS slowest, ~25% over local — the cost of");
        println!("the failure-transparent HDFS layer.");
    });
}
