//! Table I — the platform description of the modeled cluster.
//!
//! Constant-cost: `--quick` is accepted (harness convention) and ignored.

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Table I (experimental setup)");
    hpcbd_bench::run_with_report("table1", &args, || {
        let mut widths = (0usize, 0usize);
        let rows = hpcbd_cluster::comet_summary();
        for (k, v) in &rows {
            widths.0 = widths.0.max(k.len());
            widths.1 = widths.1.max(v.len());
        }
        for (k, v) in rows {
            println!("| {k:<w0$} | {v:<w1$} |", w0 = widths.0, w1 = widths.1);
        }
    });
}
