//! Ablation A4b — recovery-cost sweep (Sec. VI-D): the same iterative
//! workload replayed under a grid of deterministic [`FaultPlan`]s — node
//! crash, straggler, message loss — once per paradigm, so the *recovery
//! cost structure* of each fault-tolerance protocol can be compared on
//! one table: MPI pays checkpoints always and whole-iteration replay on
//! failure, Spark recomputes only the lost lineage, MapReduce re-executes
//! lost tasks from replicated HDFS input.
//!
//! Virtual times are bit-identical across engine execution modes, so CI
//! diffs the `--quick` output of sequential vs parallel runs verbatim.

use hpcbd_cluster::Placement;
use hpcbd_minimpi::{mpirun_faulty, CheckpointMode, Checkpointer, FaultPolicy, ReduceOp};
use hpcbd_minmapreduce::{InputFormat, JobConf, MrJobBuilder};
use hpcbd_minshmem::{shmem_run_faulty, PeCtx, ShmemCheckpointer};
use hpcbd_minspark::{ShuffleEngine, SparkCluster, SparkConfig};
use hpcbd_simnet::{FaultPlan, NodeId, SimDuration, SimTime, Work};
use std::sync::Arc;

/// Which fault the scenario injects; crash times are derived per
/// paradigm from its clean runtime (each paradigm's schedule differs).
#[derive(Clone, Copy)]
enum Fault {
    None,
    /// Crash node 1 at `frac` of the paradigm's clean runtime.
    Crash {
        frac: f64,
    },
    /// Node 1 computes `factor`x slower for the whole run.
    Straggler {
        factor: f64,
    },
    /// Uniform message-drop probability in parts per million.
    Drops {
        ppm: u32,
    },
}

struct Scenario {
    label: &'static str,
    fault: Fault,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            label: "clean",
            fault: Fault::None,
        },
        Scenario {
            label: "node-crash @40%",
            fault: Fault::Crash { frac: 0.40 },
        },
        Scenario {
            label: "node-crash @75%",
            fault: Fault::Crash { frac: 0.75 },
        },
        Scenario {
            label: "straggler x6",
            fault: Fault::Straggler { factor: 6.0 },
        },
        Scenario {
            label: "drops 5%",
            fault: Fault::Drops { ppm: 50_000 },
        },
    ]
}

/// Build the plan for a scenario. `crash_at` is the paradigm-specific
/// absolute crash time resolved from the clean run.
fn plan_for(fault: Fault, crash_at: SimTime) -> FaultPlan {
    let plan = FaultPlan::new(42);
    match fault {
        Fault::None => plan,
        Fault::Crash { .. } => plan.crash_node(NodeId(1), crash_at),
        Fault::Straggler { factor } => {
            plan.slow_node(NodeId(1), SimTime(0), SimTime(u64::MAX), factor)
        }
        Fault::Drops { ppm } => plan.drop_messages(ppm),
    }
}

// ---------------------------------------------------------------- MPI --

/// Iterative MPI job under `plan`: coordinated checkpoints every
/// `interval` iterations, plan-driven failure detection, and
/// checkpoint/restart recovery with full replay accounting.
fn run_mpi(placement: Placement, iters: u32, interval: u32, plan: FaultPlan) -> f64 {
    let out = mpirun_faulty(placement, plan, move |rank| {
        let per_iter = Work::new(2.0e8, 8.0e8);
        let stall = SimDuration::from_secs(4);
        let mut ck = Checkpointer::new(interval, 24u64 << 20);
        let mut iter = 0;
        while iter < iters {
            rank.ctx().compute(per_iter, 1.0);
            let _ = rank.allreduce(ReduceOp::Sum, &[f64::from(iter)]);
            ck.after_iteration(rank, iter);
            if ck.poll_plan_failure(
                rank,
                FaultPolicy::Restart {
                    relaunch_stall: stall,
                },
            ) {
                iter = ck.restart_replayed(rank, stall, iter, per_iter, 1);
                continue;
            }
            iter += 1;
        }
        rank.now()
    });
    out.results
        .iter()
        .map(|t| t.as_secs_f64())
        .fold(0.0, f64::max)
}

// -------------------------------------------------------------- Spark --

/// Iterative Spark job under `plan`: map-heavy rounds with a shuffle per
/// round; recovery is lineage recomputation (plus speculation for the
/// straggler scenario).
fn run_spark(nodes: u32, epn: u32, rounds: u32, items: u64, plan: FaultPlan) -> f64 {
    let mut config = SparkConfig::with_shuffle(ShuffleEngine::Socket);
    config.executors_per_node = epn;
    config.task_timeout = SimDuration::from_secs(10);
    config.speculation = true;
    let mut cluster = SparkCluster::new(nodes, config);
    if !plan.is_empty() {
        cluster = cluster.faults(plan);
    }
    cluster
        .run(move |sc| {
            let t0 = sc.now();
            let parts = 16u32;
            let xs = sc.parallelize((0..items).collect::<Vec<u64>>(), parts);
            let mut cur = xs;
            for _ in 0..rounds {
                let pairs =
                    cur.map_with_cost(Work::new(3.0e5, 64.0), 16, |x| (x % 64, x.wrapping_mul(31)));
                cur = pairs
                    .reduce_by_key(parts, |a, b| a.wrapping_add(*b))
                    .map(|(k, v)| k.wrapping_add(*v));
            }
            let n = sc.count(&cur);
            assert!(n > 0);
            (sc.now() - t0).as_secs_f64()
        })
        .value
}

// ---------------------------------------------------------- MapReduce --

/// Deterministic synthetic MR input (same shape as the engine's tests).
struct Synth {
    scale: f64,
}

impl InputFormat for Synth {
    type Rec = u64;
    fn sample_records(&self, offset: u64, _len: u64) -> Vec<u64> {
        let block = offset / (32 << 20);
        (0..10).map(|i| (block * 7 + i) % 5).collect()
    }
    fn logical_scale(&self) -> f64 {
        self.scale
    }
    fn record_work(&self) -> Work {
        Work::new(100.0, 200.0)
    }
}

/// MR count job under `plan`: recovery is tasktracker-failure detection
/// plus re-execution of lost maps from replicated HDFS blocks.
fn run_mr(nodes: u32, blocks: u64, scale: f64, plan: FaultPlan) -> f64 {
    let mut builder = MrJobBuilder::new(
        Arc::new(Synth { scale }),
        "/in",
        blocks * (32 << 20),
        |k: &u64| vec![(*k, 1u64)],
        |_k, vs: &[u64]| vs.iter().sum(),
    )
    .hdfs(hpcbd_minhdfs::HdfsConfig {
        block_size: 32 << 20,
        ..Default::default()
    })
    .conf(JobConf {
        reduce_tasks: 2,
        slots_per_node: 2,
        task_timeout: SimDuration::from_secs(20),
        speculative_execution: true,
        ..Default::default()
    });
    if !plan.is_empty() {
        builder = builder.faults(plan);
    }
    builder.run(nodes).elapsed.as_secs_f64()
}

// ------------------------------------------ A4c: coordinated vs async --

/// One semantic checkpoint-mode data point: virtual seconds, the final
/// state value (for oracle comparison), and iterations replayed.
struct CkptPoint {
    secs: f64,
    state: u64,
    replayed: u64,
}

/// Iterative MPI job whose *state* is checkpointed (payload capture) and
/// restored semantically on failure: lost iterations are re-executed by
/// the main loop from the restored value, so the final state proves the
/// restart read the last *durable* checkpoint.
fn run_mpi_ckpt(
    placement: Placement,
    iters: u32,
    interval: u32,
    mode: CheckpointMode,
    plan: FaultPlan,
) -> CkptPoint {
    let out = mpirun_faulty(placement, plan, move |rank| {
        let per_iter = Work::new(2.0e8, 8.0e8);
        let stall = SimDuration::from_secs(4);
        let mut ck = Checkpointer::new(interval, 24u64 << 20).with_mode(mode);
        let mut state = 0u64;
        let mut replayed = 0u64;
        let mut iter = 0;
        while iter < iters {
            rank.ctx().compute(per_iter, 1.0);
            let r = rank.allreduce(ReduceOp::Sum, &[f64::from(iter + 1)]);
            state = state.wrapping_add((r[0] as u64).wrapping_mul(u64::from(iter) + 1));
            ck.after_iteration_with(rank, iter, || state);
            if ck.poll_plan_failure(
                rank,
                FaultPolicy::Restart {
                    relaunch_stall: stall,
                },
            ) {
                let resume = ck.restart_semantic(rank, stall, iter + 1);
                replayed += u64::from(iter + 1 - resume);
                state = ck.restore_payload::<u64>(resume).unwrap_or(0);
                iter = resume;
                continue;
            }
            iter += 1;
        }
        (rank.now().as_secs_f64(), state, replayed)
    });
    fold_points(&out.results)
}

/// The SHMEM mirror of [`run_mpi_ckpt`]: state evolves over
/// `sum_to_all`, checkpoints drain through the symmetric heap's node
/// disks, restart agreement goes through an allgather.
fn run_shmem_ckpt(
    placement: Placement,
    iters: u32,
    interval: u32,
    mode: CheckpointMode,
    plan: FaultPlan,
) -> CkptPoint {
    let out = shmem_run_faulty(placement, plan, move |pe: &mut PeCtx| {
        let per_iter = Work::new(2.0e8, 8.0e8);
        let stall = SimDuration::from_secs(4);
        let mut ck = ShmemCheckpointer::new(interval, 24u64 << 20).with_mode(mode);
        let acc = pe.malloc::<f64>("a4c_acc", 1, 0.0);
        let mut state = 0u64;
        let mut replayed = 0u64;
        let mut iter = 0;
        while iter < iters {
            pe.ctx().compute(per_iter, 1.0);
            pe.local_write(&acc, 0, &[f64::from(iter + 1)]);
            pe.sum_to_all(&acc);
            let v = pe.local_clone(&acc)[0];
            state = state.wrapping_add((v as u64).wrapping_mul(u64::from(iter) + 1));
            ck.after_iteration_with(pe, iter, || state);
            if ck.poll_plan_failure(
                pe,
                FaultPolicy::Restart {
                    relaunch_stall: stall,
                },
            ) {
                let resume = ck.restart_semantic(pe, stall, iter + 1);
                replayed += u64::from(iter + 1 - resume);
                state = ck.restore_payload::<u64>(resume).unwrap_or(0);
                iter = resume;
                continue;
            }
            iter += 1;
        }
        pe.free(acc);
        (pe.now().as_secs_f64(), state, replayed)
    });
    fold_points(&out.results)
}

/// Collapse per-process `(secs, state, replayed)` tuples: slowest clock
/// wins, states must agree (they are allreduce-derived), replay sums.
fn fold_points(results: &[(f64, u64, u64)]) -> CkptPoint {
    let secs = results.iter().map(|r| r.0).fold(0.0, f64::max);
    let state = results[0].1;
    assert!(
        results.iter().all(|r| r.1 == state),
        "collective-derived state must agree across processes"
    );
    CkptPoint {
        secs,
        state,
        replayed: results.iter().map(|r| r.2).sum(),
    }
}

/// The A4c table: coordinated vs asynchronous checkpointing at equal
/// interval, fault-free and under a node crash, for MPI and SHMEM.
fn a4c_async_ckpt(placement: Placement, iters: u32, interval: u32) {
    println!();
    println!(
        "A4c — coordinated vs async checkpointing (interval {interval}, {} iters):",
        iters
    );
    println!(
        "{:<8} {:<12} {:>12} {:>20} {:>9} {:>7}",
        "runtime", "ckpt mode", "clean", "node-crash @55%", "replayed", "result"
    );
    type Runner = fn(Placement, u32, u32, CheckpointMode, FaultPlan) -> CkptPoint;
    let runners: [(&str, Runner); 2] = [("mpi", run_mpi_ckpt), ("shmem", run_shmem_ckpt)];
    for (name, run) in runners {
        for mode in [CheckpointMode::Coordinated, CheckpointMode::Async] {
            let clean = run(placement, iters, interval, mode, FaultPlan::new(7));
            let crash_at = SimTime((clean.secs * 0.55 * 1e9) as u64);
            let plan = FaultPlan::new(7).crash_node(NodeId(1), crash_at);
            let faulty = run(placement, iters, interval, mode, plan);
            let ok = faulty.state == clean.state;
            assert!(
                ok,
                "{name}/{mode:?}: restart must reproduce the fault-free state \
                 (got {}, oracle {})",
                faulty.state, clean.state
            );
            println!(
                "{:<8} {:<12} {:>11.3}s {:>10.3}s ({:+6.1}%) {:>9} {:>7}",
                name,
                match mode {
                    CheckpointMode::Coordinated => "coordinated",
                    CheckpointMode::Async => "async",
                },
                clean.secs,
                faulty.secs,
                (faulty.secs / clean.secs - 1.0) * 100.0,
                faulty.replayed,
                if ok { "ok" } else { "CORRUPT" }
            );
        }
    }
    println!();
    println!("shape: at equal interval the async mode's steady-state (clean) cost");
    println!("is lower — the drain overlaps later iterations instead of stopping");
    println!("the world — while restart still lands on the last checkpoint whose");
    println!("background drain had fully reached the disk before the crash (a");
    println!("mid-drain crash forfeits that snapshot and replays further back).");
}

// --------------------------------------------------------------- main --

/// Crash time for a paradigm: `frac` through the clean runtime, offset
/// past the framework's startup phase so the victim is actually working.
fn crash_time(clean_secs: f64, startup_secs: f64, frac: f64) -> SimTime {
    let t = (startup_secs + (clean_secs - startup_secs) * frac).max(startup_secs + 0.1);
    SimTime((t * 1e9) as u64)
}

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Ablation A4b (fault sweep: recovery cost per paradigm)");
    let quick = args.quick;
    let (placement, iters, interval) = if quick {
        (Placement::new(2, 2), 6u32, 3u32)
    } else {
        (Placement::new(4, 8), 10, 3)
    };
    let (spark_nodes, spark_epn, spark_rounds, spark_items) = if quick {
        (3, 2, 3u32, 2_000u64)
    } else {
        (4, 4, 6, 20_000)
    };
    let (mr_nodes, mr_blocks, mr_scale) = if quick {
        (3u32, 8u64, 50_000.0)
    } else {
        (4, 16, 200_000.0)
    };

    hpcbd_bench::run_with_report("ablation_fault_sweep", &args, || {
        let mpi_clean = run_mpi(placement, iters, interval, FaultPlan::new(42));
        let spark_clean = run_spark(
            spark_nodes,
            spark_epn,
            spark_rounds,
            spark_items,
            FaultPlan::new(42),
        );
        let mr_clean = run_mr(mr_nodes, mr_blocks, mr_scale, FaultPlan::new(42));

        println!();
        println!(
            "{:<18} {:>22} {:>22} {:>22}",
            "scenario", "MPI ckpt/restart", "Spark lineage", "MR re-execution"
        );
        let cell = |secs: f64, clean: f64| -> String {
            if (secs - clean).abs() < f64::EPSILON * clean {
                format!("{secs:9.3}s   (base)")
            } else {
                format!("{secs:9.3}s ({:+6.1}%)", (secs / clean - 1.0) * 100.0)
            }
        };
        for sc in scenarios() {
            let (mpi_t, spark_t, mr_t) = match sc.fault {
                Fault::None => (mpi_clean, spark_clean, mr_clean),
                fault => {
                    let frac = match fault {
                        Fault::Crash { frac } => frac,
                        _ => 0.0,
                    };
                    // Spark's measured span starts after ~0.9 s of app
                    // startup; MR's includes the 2.5 s job submission.
                    let mpi = run_mpi(
                        placement,
                        iters,
                        interval,
                        plan_for(fault, crash_time(mpi_clean, 0.0, frac)),
                    );
                    let spark = run_spark(
                        spark_nodes,
                        spark_epn,
                        spark_rounds,
                        spark_items,
                        plan_for(fault, crash_time(spark_clean + 0.9, 0.9, frac)),
                    );
                    let mr = run_mr(
                        mr_nodes,
                        mr_blocks,
                        mr_scale,
                        plan_for(fault, crash_time(mr_clean, 2.6, frac)),
                    );
                    (mpi, spark, mr)
                }
            };
            println!(
                "{:<18} {:>22} {:>22} {:>22}",
                sc.label,
                cell(mpi_t, mpi_clean),
                cell(spark_t, spark_clean),
                cell(mr_t, mr_clean)
            );
        }
        println!();
        println!("shape: the crash rows show the protocols' asymmetry — MPI replays");
        println!("whole iterations from the last coordinated checkpoint, Spark");
        println!("recomputes only the lost partitions' lineage, MapReduce re-runs");
        println!("lost map tasks against surviving HDFS replicas. Stragglers hurt");
        println!("BSP-style MPI most (every allreduce waits); speculation caps the");
        println!("damage for Spark and MapReduce. Message drops cost retransmits");
        println!("everywhere but trigger no recovery protocol.");

        a4c_async_ckpt(placement, iters, interval);
    });
}
