//! Ablation A7 — storage contention on the Kirchhoff-style seismic scan
//! (Sec. III-C): local scratch vs one shared NFS server vs HDFS, across
//! reader counts.

use hpcbd_core::bench_seismic::ablation_seismic;
use hpcbd_workloads::SeismicSurvey;

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Ablation A7 (seismic scan storage contention)");
    let (survey, nodes, ppn) = if args.quick {
        (SeismicSurvey::new(0xA7, 32_000_000, 1600), vec![2u32, 4], 4)
    } else {
        // 1 TB logical survey (the paper's 500M traces).
        (SeismicSurvey::paper_500m(), vec![2u32, 4, 8], 8)
    };
    hpcbd_bench::run_with_report("ablation_seismic", &args, || {
        let table = ablation_seismic(&survey, &nodes, ppn);
        println!("{table}");
        println!("shape: node-local scratch and HDFS aggregate bandwidth with the");
        println!("node count; the single NFS server is flat no matter how many");
        println!("readers arrive — \"parallel I/O does not solve storage");
        println!("contention\" (Sec. III-C).");
    });
}
