use hpcbd_cluster::Placement;
use hpcbd_core::bench_pagerank::{mpi_pagerank, PagerankInput};
fn main() {
    let input = PagerankInput::paper();
    println!(
        "vertices={} edges={}",
        input.graph.vertices,
        input.graph.edge_count()
    );
    let (t, ranks) = mpi_pagerank(&input, Placement::new(1, 16));
    println!("ok t={t} ranks={}", ranks.len());
}
