//! Table III — code size and boilerplate per paradigm.
//!
//! Analyzes this repository's own per-paradigm benchmark implementations
//! (the `TABLE3-BEGIN/END` regions in `hpcbd-core`), reproducing the
//! paper's maintainability comparison with the same methodology: total
//! LoC and the share of distribution boilerplate.
//!
//! Constant-cost: `--quick` is accepted (harness convention) and ignored.

use hpcbd_core::ResultTable;
use hpcbd_metrics::{analyze_region, BoilerplateSpec};

const ANSWERS_SRC: &str = include_str!("../../../core/src/bench_answers.rs");
const PAGERANK_SRC: &str = include_str!("../../../core/src/bench_pagerank.rs");
const FILEREAD_SRC: &str = include_str!("../../../core/src/bench_fileread.rs");
const REDUCE_SRC: &str = include_str!("../../../core/src/bench_reduce.rs");

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Table III (LoC and boilerplate per paradigm)");
    let regions: Vec<(&str, &str, BoilerplateSpec)> = vec![
        ("AnswersCount", "answers-openmp", BoilerplateSpec::openmp()),
        ("AnswersCount", "answers-mpi", BoilerplateSpec::mpi()),
        ("AnswersCount", "answers-spark", BoilerplateSpec::spark()),
        ("AnswersCount", "answers-hadoop", BoilerplateSpec::hadoop()),
        ("PageRank", "pagerank-mpi", BoilerplateSpec::mpi()),
        ("PageRank", "pagerank-spark", BoilerplateSpec::spark()),
        ("PageRank", "pagerank-shmem", BoilerplateSpec::openshmem()),
        ("FileRead", "fileread-mpi", BoilerplateSpec::mpi()),
        ("FileRead", "fileread-spark-hdfs", BoilerplateSpec::spark()),
        ("Reduce", "reduce-mpi", BoilerplateSpec::mpi()),
        ("Reduce", "reduce-spark", BoilerplateSpec::spark()),
    ];
    let mut table = ResultTable::new(
        "Table III — code size of the benchmark implementations",
        &[
            "benchmark",
            "paradigm",
            "LoC",
            "boilerplate",
            "boilerplate %",
        ],
    );
    hpcbd_bench::run_with_report("table3", &args, || {
        for (bench, region, spec) in regions {
            let src = [ANSWERS_SRC, PAGERANK_SRC, FILEREAD_SRC, REDUCE_SRC]
                .iter()
                .find_map(|s| {
                    analyze_region(s, region, &spec)
                        .unwrap_or_else(|e| panic!("table3 marker error: {e}"))
                })
                .unwrap_or_else(|| panic!("region {region} not found"));
            table.push_row(vec![
                bench.to_string(),
                spec.paradigm.to_string(),
                src.total_loc.to_string(),
                src.boilerplate_loc.to_string(),
                format!("{:.0}%", src.boilerplate_pct()),
            ]);
        }
        println!("{table}");
        println!("shape: OpenMP smallest with the least boilerplate; Spark compact");
        println!("with setup-only boilerplate; MPI and the PGAS code carry explicit");
        println!("communication plumbing; Hadoop adds job-configuration mass.");
    });
}
