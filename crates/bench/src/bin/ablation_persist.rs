//! Ablation A1 — the `persist` call in the BigDataBench PageRank
//! (Sec. VI-C: "explicitly asking Spark to cache intermediate results
//! via a simple API call resulted in large speedups").

use hpcbd_cluster::Placement;
use hpcbd_core::bench_pagerank::{persist_ablation, PagerankInput};

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Ablation A1 (persist vs no persist)");
    let (input, placement) = if args.quick {
        (PagerankInput::small(), Placement::new(2, 4))
    } else {
        (PagerankInput::paper(), Placement::new(4, 16))
    };
    hpcbd_bench::run_with_report("ablation_persist", &args, || {
        let (with_persist, without) = persist_ablation(&input, placement);
        println!("with persist:    {with_persist:.3}s");
        println!("without persist: {without:.3}s");
        println!("speedup:         {:.2}x", without / with_persist);
        println!();
        println!("note: our engine keeps shuffle map outputs durable (like Spark's");
        println!("shuffle files), so the ablation isolates the cache-hit effect on");
        println!("repeated materialization; the paper's full 3x also includes");
        println!("recomputation that durable shuffle files cannot serve.");
    });
}
