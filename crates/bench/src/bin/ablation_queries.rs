//! Ablation A6 — k repeated queries: Hadoop (one job per query, each
//! re-reading from disk) vs Spark (load once, persist, query in memory).
//! The Sec. II-D/II-E contrast that motivates Spark's existence.

use hpcbd_cluster::Placement;
use hpcbd_core::bench_queries::ablation_queries;
use hpcbd_workloads::StackExchangeDataset;

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Ablation A6 (repeated queries: disk jobs vs memory)");
    let (ds, placement, counts) = if args.quick {
        let size = 2u64 << 30;
        let records = size / hpcbd_workloads::stackexchange::RECORD_BYTES;
        (
            StackExchangeDataset::new(0x0A6, size, records / 15_000),
            Placement::new(2, 4),
            vec![1u32, 2, 4],
        )
    } else {
        let size = 20u64 << 30;
        let records = size / hpcbd_workloads::stackexchange::RECORD_BYTES;
        (
            StackExchangeDataset::new(0x0A6, size, records / 60_000),
            Placement::new(4, 8),
            vec![1u32, 2, 4, 8],
        )
    };
    hpcbd_bench::run_with_report("ablation_queries", &args, || {
        let table = ablation_queries(&ds, placement, &counts);
        println!("{table}");
        println!("shape: at k=1 the engines are close (both pay one ingest);");
        println!("every extra Hadoop query re-reads and re-parses the input,");
        println!("every extra Spark query is a cache scan — the ratio grows with k.");
    });
}
