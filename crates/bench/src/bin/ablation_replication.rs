//! Ablation A2 — HDFS replication factor vs data locality
//! (Sec. V-B2: raising replication to the executor-node count removed
//! the stragglers caused by non-local blocks).

use hpcbd_cluster::Placement;
use hpcbd_core::bench_fileread::spark_hdfs_read;
use hpcbd_core::ResultTable;

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Ablation A2 (HDFS replication vs locality)");
    // Node counts must exceed the default replication (3) or every
    // block is trivially everywhere and the two columns coincide.
    let (nodes_list, ppn, size) = if args.quick {
        (vec![4u32], 4, 2u64 << 30)
    } else {
        (vec![4u32, 8], 8, 8u64 << 30)
    };
    hpcbd_bench::run_with_report("ablation_replication", &args, || {
        let mut table = ResultTable::new(
            "Spark read time: replication 3 (default) vs = node count",
            &["nodes", "replication 3", "replication = nodes"],
        );
        for nodes in nodes_list {
            let placement = Placement::new(nodes, ppn);
            let (t3, _) = spark_hdfs_read(placement, size, 3);
            let (tn, _) = spark_hdfs_read(placement, size, nodes);
            table.push_row(vec![
                nodes.to_string(),
                format!("{t3:.3}s"),
                format!("{tn:.3}s"),
            ]);
        }
        println!("{table}");
        println!("shape: full replication guarantees every executor a local block,");
        println!("removing remote-read stragglers as the node count grows.");
    });
}
