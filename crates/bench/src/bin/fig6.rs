//! Fig. 6 — BigDataBench (tuned) PageRank: MPI vs Spark vs Spark-RDMA.

use hpcbd_core::bench_pagerank::{figure6, PagerankInput};

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Fig. 6 (BigDataBench PageRank, 1M vertices)");
    let (input, nodes, ppn) = if args.quick {
        (PagerankInput::small(), vec![1u32, 2], 4)
    } else {
        (PagerankInput::paper(), vec![1u32, 2, 4, 8], 16)
    };
    hpcbd_bench::run_with_report("fig6", &args, || {
        let table = figure6(&input, &nodes, ppn);
        println!("{table}");
        println!("shape: MPI near-flat (exchange-bound at this size); tuned Spark");
        println!("scales down with nodes; Spark-RDMA ~= Spark because the persist+");
        println!("co-partitioning keeps shuffle volume low.");
    });
}
