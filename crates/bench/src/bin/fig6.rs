//! Fig. 6 — BigDataBench (tuned) PageRank: MPI vs Spark vs Spark-RDMA.
//!
//! With `--comet` the same workloads run at full-machine scale instead:
//! one simulated process per core of the real Comet (1,984 nodes x
//! 24 cores = 47,616 MPI ranks; ~51.6k processes on the Spark side),
//! exercising the coroutine process engine (DESIGN.md §12). `--quick`
//! then trims the power iterations, not the process count.

use hpcbd_cluster::Placement;
use hpcbd_core::bench_pagerank::{figure6, figure6_comet, PagerankInput};

fn main() {
    let args = hpcbd_bench::BenchArgs::parse_allowing(&[("--comet", false)]);
    if std::env::args().any(|a| a == "--comet") {
        hpcbd_bench::banner("Fig. 6 at full-Comet scale (47,616+ simulated processes)");
        let input = PagerankInput::comet(args.quick);
        hpcbd_bench::run_with_report("fig6_comet", &args, || {
            let table = figure6_comet(&input, Placement::new(1984, 24));
            println!("{table}");
            println!("every rank of the real machine is a simulated process; validation");
            println!("is an O(log p) allreduce checksum rather than a rank-0 gather.");
        });
        return;
    }
    hpcbd_bench::banner("Fig. 6 (BigDataBench PageRank, 1M vertices)");
    let (input, nodes, ppn) = if args.quick {
        (PagerankInput::small(), vec![1u32, 2], 4)
    } else {
        (PagerankInput::paper(), vec![1u32, 2, 4, 8], 16)
    };
    hpcbd_bench::run_with_report("fig6", &args, || {
        let table = figure6(&input, &nodes, ppn);
        println!("{table}");
        println!("shape: MPI near-flat (exchange-bound at this size); tuned Spark");
        println!("scales down with nodes; Spark-RDMA ~= Spark because the persist+");
        println!("co-partitioning keeps shuffle volume low.");
    });
}
