//! Ablation A5 — PageRank over the PGAS runtime (Sec. II-C claims
//! OpenSHMEM suits irregular communication like graph codes).

use hpcbd_cluster::Placement;
use hpcbd_core::bench_pagerank::{
    mpi_pagerank, shmem_pagerank, spark_pagerank, PagerankInput, SparkVariant,
};
use hpcbd_core::ResultTable;
use hpcbd_minspark::ShuffleEngine;

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Ablation A5 (PageRank over OpenSHMEM)");
    let (input, nodes_list, ppn) = if args.quick {
        (PagerankInput::small(), vec![1u32, 2], 4)
    } else {
        (PagerankInput::paper(), vec![1u32, 2, 4, 8], 16)
    };
    hpcbd_bench::run_with_report("ablation_shmem_pagerank", &args, || {
        let mut table = ResultTable::new(
            "PageRank: OpenSHMEM vs MPI vs tuned Spark",
            &["nodes", "OpenSHMEM", "MPI", "Spark (tuned)"],
        );
        for nodes in nodes_list {
            let placement = Placement::new(nodes, ppn);
            let (shmem_t, _) = shmem_pagerank(&input, placement);
            let (mpi_t, _) = mpi_pagerank(&input, placement);
            let (spark_t, _) = spark_pagerank(
                &input,
                placement,
                SparkVariant::BigDataBenchTuned,
                ShuffleEngine::Socket,
            );
            table.push_row(vec![
                nodes.to_string(),
                format!("{shmem_t:.3}s"),
                format!("{mpi_t:.3}s"),
                format!("{spark_t:.3}s"),
            ]);
        }
        println!("{table}");
        println!("shape: both HPC runtimes sit well under Spark; the one-sided");
        println!("exchange tracks MPI's alltoall closely at these message sizes.");
    });
}
