//! Ablation A8 — the `target` offload trade-off (Sec. III-D): host
//! OpenMP team vs discrete GPU (PCIe transfer wall) vs unified-memory
//! many-core, across kernel arithmetic intensities.

use hpcbd_core::bench_offload::{ablation_offload, discrete_crossover};

fn main() {
    let args = hpcbd_bench::BenchArgs::parse();
    hpcbd_bench::banner("Ablation A8 (accelerator offload trade-off)");
    let bytes = if args.quick { 1u64 << 30 } else { 4u64 << 30 };
    let intensities: Vec<f64> = (0..10).map(|i| 2f64.powi(i)).collect();
    hpcbd_bench::run_with_report("ablation_offload", &args, || {
        let table = ablation_offload(bytes, &intensities);
        println!("{table}");
        if let Some(x) = discrete_crossover(bytes, &intensities) {
            println!("discrete-GPU crossover at ~{x} flops/byte");
        }
        println!();
        println!("shape: streaming kernels stay home (the PCIe wall); compute-");
        println!("dense kernels pay it back; unified memory (KNL/APU style)");
        println!("crosses over far earlier — the paper's Sec. III-D trade-off.");
    });
}
