//! `hpcbd-bench` — the harness that regenerates every table and figure.
//!
//! One binary per paper artifact (see DESIGN.md §4 for the index):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table I — platform description |
//! | `fig3` | Fig. 3 — reduce microbenchmark |
//! | `table2` | Table II — parallel file read |
//! | `fig4` | Fig. 4 — AnswersCount |
//! | `fig6` | Fig. 6 — BigDataBench PageRank |
//! | `fig7` | Fig. 7 — HiBench PageRank |
//! | `table3` | Table III — LoC / boilerplate |
//! | `ablation_persist` | A1 — the `persist` effect |
//! | `ablation_replication` | A2 — HDFS replication vs locality |
//! | `ablation_rdma_all` | A3 — RDMA for the control plane too |
//! | `ablation_fault` | A4 — lineage vs checkpoint/restart |
//! | `ablation_fault_sweep` | A4b — fault-rate sweep across runtimes |
//! | `ablation_shmem_pagerank` | A5 — PageRank over PGAS |
//! | `ablation_offload` | A6 — RDMA offload factor |
//! | `ablation_queries` | A7 — query-shape sweep |
//! | `ablation_seismic` | A8 — seismic survey workload |
//! | `bench` | host wall-clock trajectory (`BENCH_simnet.json`) |
//!
//! All binaries accept `--quick` to run a scaled-down configuration
//! (fewer nodes, smaller sweep) for fast smoke runs; the default is the
//! paper-scale setup. For the constant-cost tables (`table1`, `table3`)
//! `--quick` is accepted and ignored — there is nothing to scale down —
//! so one invocation convention covers the whole harness (CI runs every
//! bin with `--quick` in its smoke matrix). Criterion benches
//! (`cargo bench`) time the *simulator's wall-clock cost* on small
//! configurations of the same experiments; `bench_hotpath` times the
//! engine's scheduling/tracing machinery itself.

#![warn(missing_docs)]

/// True when `--quick` is among the CLI arguments.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Standard banner for harness output.
pub fn banner(artifact: &str) {
    println!("==============================================================");
    println!("hpcbd reproduction — {artifact}");
    println!("(virtual times from the simulated Comet platform; see");
    println!(" EXPERIMENTS.md for the paper-vs-measured discussion)");
    println!("==============================================================");
}
