//! `hpcbd-bench` — the harness that regenerates every table and figure.
//!
//! One binary per paper artifact (see DESIGN.md §4 for the index):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table I — platform description |
//! | `fig3` | Fig. 3 — reduce microbenchmark |
//! | `table2` | Table II — parallel file read |
//! | `fig4` | Fig. 4 — AnswersCount |
//! | `fig6` | Fig. 6 — BigDataBench PageRank |
//! | `fig7` | Fig. 7 — HiBench PageRank |
//! | `table3` | Table III — LoC / boilerplate |
//! | `ablation_persist` | A1 — the `persist` effect |
//! | `ablation_replication` | A2 — HDFS replication vs locality |
//! | `ablation_rdma_all` | A3 — RDMA for the control plane too |
//! | `ablation_fault` | A4 — lineage vs checkpoint/restart |
//! | `ablation_fault_sweep` | A4b — fault-rate sweep across runtimes |
//! | `ablation_shmem_pagerank` | A5 — PageRank over PGAS |
//! | `ablation_offload` | A6 — RDMA offload factor |
//! | `ablation_queries` | A7 — query-shape sweep |
//! | `ablation_seismic` | A8 — seismic survey workload |
//! | `bench` | host wall-clock trajectory (`BENCH_simnet.json`) |
//!
//! All binaries accept `--quick` to run a scaled-down configuration
//! (fewer nodes, smaller sweep) for fast smoke runs; the default is the
//! paper-scale setup. For the constant-cost tables (`table1`, `table3`)
//! `--quick` is accepted and ignored — there is nothing to scale down —
//! so one invocation convention covers the whole harness (CI runs every
//! bin with `--quick` in its smoke matrix). Every binary also accepts
//! `--report PATH` (phase-attributed JSON run report, DESIGN.md §10),
//! `--perfetto PATH` (Chrome-tracing export with causal flow arrows)
//! and `--telemetry` / `--telemetry-out PATH` (live virtual-time
//! telemetry, DESIGN.md §15) via the shared [`BenchArgs`] parser. Criterion benches
//! (`cargo bench`) time the *simulator's wall-clock cost* on small
//! configurations of the same experiments; `bench_hotpath` times the
//! engine's scheduling/tracing machinery itself.

#![warn(missing_docs)]

use std::path::PathBuf;

/// True when `--quick` is among the CLI arguments.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The CLI flags every harness binary shares.
///
/// * `--quick` — run the scaled-down configuration.
/// * `--report PATH` — capture every simulator run the binary performs
///   and write a phase-attributed [`hpcbd_obs::RunReport`] to PATH
///   (also printed as a text table after the artifact's own output).
/// * `--perfetto PATH` — additionally write the first captured run as
///   Chrome-tracing JSON with causal flow arrows, loadable in Perfetto.
/// * `--telemetry` — sample live telemetry (time-series, windowed
///   quantiles, SLO attainment) into the report's `telemetry` section;
///   the interval comes from `HPCBD_TELEMETRY` (nanoseconds), default
///   [`hpcbd_simnet::DEFAULT_TELEMETRY_INTERVAL_NS`].
/// * `--telemetry-out PATH` — implies `--telemetry` and writes the
///   telemetry-bearing report JSON to PATH (independent of `--report`).
///
/// Unknown arguments are ignored so binaries can layer their own flags
/// (e.g. `bench --out PATH`) on top.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--quick` was passed.
    pub quick: bool,
    /// Destination of the JSON run report, if `--report` was passed.
    pub report: Option<PathBuf>,
    /// Destination of the Perfetto trace, if `--perfetto` was passed.
    pub perfetto: Option<PathBuf>,
    /// `--telemetry` (or `--telemetry-out`) was passed.
    pub telemetry: bool,
    /// Destination of the telemetry report, if `--telemetry-out` was
    /// passed.
    pub telemetry_out: Option<PathBuf>,
}

impl BenchArgs {
    /// Parse the shared flags from the process arguments.
    pub fn parse() -> BenchArgs {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse the shared flags from an explicit argument list.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> BenchArgs {
        let mut parsed = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => parsed.quick = true,
                "--report" => parsed.report = it.next().map(PathBuf::from),
                "--perfetto" => parsed.perfetto = it.next().map(PathBuf::from),
                "--telemetry" => parsed.telemetry = true,
                "--telemetry-out" => {
                    parsed.telemetry_out = it.next().map(PathBuf::from);
                    parsed.telemetry = parsed.telemetry || parsed.telemetry_out.is_some();
                }
                _ => {}
            }
        }
        parsed
    }
}

/// Run an artifact's body, optionally capturing every simulator run it
/// performs into a [`hpcbd_obs::RunReport`].
///
/// With neither `--report` nor `--perfetto` this is a plain call to `f`
/// — no capture, no tracing, zero overhead. Otherwise the body is
/// bracketed with [`hpcbd_simnet::begin_capture`] /
/// [`hpcbd_simnet::end_capture`] (which forces tracing on inside the
/// engine), the report is built, written, and its text rendering is
/// printed after the artifact's own output.
pub fn run_with_report<R>(artifact: &str, args: &BenchArgs, f: impl FnOnce() -> R) -> R {
    if args.report.is_none() && args.perfetto.is_none() && !args.telemetry {
        return f();
    }
    // `--telemetry` turns the sampler on for the capture window:
    // HPCBD_TELEMETRY picks the interval, else the default tick. The
    // prior interval is restored afterwards so library callers (tests)
    // don't leak sampling into later runs.
    let prev_interval = hpcbd_simnet::telemetry_interval();
    if args.telemetry {
        let interval = prev_interval.unwrap_or(hpcbd_simnet::DEFAULT_TELEMETRY_INTERVAL_NS);
        hpcbd_simnet::set_telemetry_interval(Some(interval));
    }
    // The self-profiler (HPCBD_SELFPROF) only matters when a report is
    // being captured — its counters surface as the report's
    // `host_profile` rows — so resolve the env here, not on every run.
    hpcbd_simnet::selfprof_from_env();
    hpcbd_simnet::begin_capture();
    let result = f();
    let captures = hpcbd_simnet::end_capture();
    hpcbd_simnet::set_telemetry_interval(prev_interval);
    let report = hpcbd_obs::RunReport::from_captures(artifact, args.quick, &captures);
    println!();
    print!("{}", report.render_text());
    if let Some(path) = &args.report {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("report written to {}", path.display()),
            Err(e) => eprintln!("failed to write report {}: {e}", path.display()),
        }
    }
    if let Some(path) = &args.telemetry_out {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("telemetry report written to {}", path.display()),
            Err(e) => eprintln!("failed to write telemetry {}: {e}", path.display()),
        }
    }
    if let Some(path) = &args.perfetto {
        match captures.first() {
            Some(cap) => {
                let graph = hpcbd_obs::match_events(&cap.events);
                let telemetry = report.sections.first().and_then(|s| s.telemetry.as_ref());
                let json = hpcbd_obs::to_perfetto_json_with_telemetry(cap, &graph, telemetry);
                match std::fs::write(path, json) {
                    Ok(()) => println!("perfetto trace written to {}", path.display()),
                    Err(e) => eprintln!("failed to write trace {}: {e}", path.display()),
                }
            }
            None => eprintln!("no simulator run captured; perfetto trace not written"),
        }
    }
    result
}

/// Standard banner for harness output.
pub fn banner(artifact: &str) {
    println!("==============================================================");
    println!("hpcbd reproduction — {artifact}");
    println!("(virtual times from the simulated Comet platform; see");
    println!(" EXPERIMENTS.md for the paper-vs-measured discussion)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_shared_flags() {
        let a = parse(&["--quick", "--report", "out.json"]);
        assert!(a.quick);
        assert_eq!(a.report.as_deref(), Some(std::path::Path::new("out.json")));
        assert!(a.perfetto.is_none());
    }

    #[test]
    fn ignores_unknown_flags() {
        let a = parse(&["--out", "BENCH_simnet.json", "--perfetto", "t.json"]);
        assert!(!a.quick);
        assert!(a.report.is_none());
        assert_eq!(a.perfetto.as_deref(), Some(std::path::Path::new("t.json")));
    }

    #[test]
    fn missing_value_yields_none() {
        let a = parse(&["--report"]);
        assert!(a.report.is_none());
    }

    #[test]
    fn telemetry_flag_parses_alone() {
        let a = parse(&["--telemetry"]);
        assert!(a.telemetry);
        assert!(a.telemetry_out.is_none());
    }

    #[test]
    fn telemetry_out_implies_telemetry() {
        let a = parse(&["--telemetry-out", "t.json"]);
        assert!(a.telemetry);
        assert_eq!(
            a.telemetry_out.as_deref(),
            Some(std::path::Path::new("t.json"))
        );
        // A dangling --telemetry-out neither crashes nor enables
        // sampling by accident.
        let b = parse(&["--telemetry-out"]);
        assert!(!b.telemetry);
        assert!(b.telemetry_out.is_none());
    }
}
