//! `hpcbd-bench` — the harness that regenerates every table and figure.
//!
//! One binary per paper artifact (see DESIGN.md §4 for the index):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table I — platform description |
//! | `fig3` | Fig. 3 — reduce microbenchmark |
//! | `table2` | Table II — parallel file read |
//! | `fig4` | Fig. 4 — AnswersCount |
//! | `fig6` | Fig. 6 — BigDataBench PageRank |
//! | `fig7` | Fig. 7 — HiBench PageRank |
//! | `table3` | Table III — LoC / boilerplate |
//! | `ablation_persist` | A1 — the `persist` effect |
//! | `ablation_replication` | A2 — HDFS replication vs locality |
//! | `ablation_rdma_all` | A3 — RDMA for the control plane too |
//! | `ablation_fault` | A4 — lineage vs checkpoint/restart |
//! | `ablation_fault_sweep` | A4b — fault-rate sweep across runtimes |
//! | `ablation_shmem_pagerank` | A5 — PageRank over PGAS |
//! | `ablation_offload` | A6 — RDMA offload factor |
//! | `ablation_queries` | A7 — query-shape sweep |
//! | `ablation_seismic` | A8 — seismic survey workload |
//! | `bench` | host wall-clock trajectory (`BENCH_simnet.json`) |
//!
//! All binaries accept `--quick` to run a scaled-down configuration
//! (fewer nodes, smaller sweep) for fast smoke runs; the default is the
//! paper-scale setup. For the constant-cost tables (`table1`, `table3`)
//! `--quick` is accepted and ignored — there is nothing to scale down —
//! so one invocation convention covers the whole harness (CI runs every
//! bin with `--quick` in its smoke matrix). Every binary also accepts
//! `--report PATH` (phase-attributed JSON run report, DESIGN.md §10),
//! `--perfetto PATH` (Chrome-tracing export with causal flow arrows)
//! and `--telemetry` / `--telemetry-out PATH` (live virtual-time
//! telemetry, DESIGN.md §15) via the shared [`BenchArgs`] parser. Criterion benches
//! (`cargo bench`) time the *simulator's wall-clock cost* on small
//! configurations of the same experiments; `bench_hotpath` times the
//! engine's scheduling/tracing machinery itself.

#![warn(missing_docs)]

pub mod datacenter;

use std::path::PathBuf;

/// True when `--quick` is among the CLI arguments.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The CLI flags every harness binary shares.
///
/// * `--quick` — run the scaled-down configuration.
/// * `--report PATH` — capture every simulator run the binary performs
///   and write a phase-attributed [`hpcbd_obs::RunReport`] to PATH
///   (also printed as a text table after the artifact's own output).
/// * `--perfetto PATH` — additionally write the first captured run as
///   Chrome-tracing JSON with causal flow arrows, loadable in Perfetto.
/// * `--telemetry` — sample live telemetry (time-series, windowed
///   quantiles, SLO attainment) into the report's `telemetry` section;
///   the interval comes from `HPCBD_TELEMETRY` (nanoseconds), default
///   [`hpcbd_simnet::DEFAULT_TELEMETRY_INTERVAL_NS`].
/// * `--telemetry-out PATH` — implies `--telemetry` and writes the
///   telemetry-bearing report JSON to PATH (independent of `--report`).
///
/// Unknown arguments are an error: the parser prints a usage line
/// naming the offending flag and exits with status 2, so a typo like
/// `--telemtry-out` fails loudly instead of silently running without
/// telemetry. Binaries with their own flags (e.g. `bench --out PATH`)
/// declare them via [`BenchArgs::parse_allowing`] and read the values
/// from `std::env::args` themselves.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--quick` was passed.
    pub quick: bool,
    /// Destination of the JSON run report, if `--report` was passed.
    pub report: Option<PathBuf>,
    /// Destination of the Perfetto trace, if `--perfetto` was passed.
    pub perfetto: Option<PathBuf>,
    /// `--telemetry` (or `--telemetry-out`) was passed.
    pub telemetry: bool,
    /// Destination of the telemetry report, if `--telemetry-out` was
    /// passed.
    pub telemetry_out: Option<PathBuf>,
}

/// A binary-specific extra flag: its name and whether it consumes the
/// following argument as a value.
pub type ExtraFlag = (&'static str, bool);

impl BenchArgs {
    /// Parse the shared flags from the process arguments. Any flag the
    /// parser does not know is a fatal error (usage to stderr, exit 2).
    pub fn parse() -> BenchArgs {
        Self::parse_allowing(&[])
    }

    /// Parse the shared flags, additionally accepting (and skipping
    /// over) the binary's own `extra` flags — the binary reads their
    /// values from `std::env::args` itself.
    pub fn parse_allowing(extra: &[ExtraFlag]) -> BenchArgs {
        match Self::parse_from(std::env::args().skip(1), extra) {
            Ok(parsed) => parsed,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list. `extra` declares flags the
    /// caller handles itself; anything else unknown is an `Err` naming
    /// the offending argument.
    pub fn parse_from(
        args: impl IntoIterator<Item = String>,
        extra: &[ExtraFlag],
    ) -> Result<BenchArgs, String> {
        let mut parsed = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => parsed.quick = true,
                "--report" => parsed.report = it.next().map(PathBuf::from),
                "--perfetto" => parsed.perfetto = it.next().map(PathBuf::from),
                "--telemetry" => parsed.telemetry = true,
                "--telemetry-out" => {
                    parsed.telemetry_out = it.next().map(PathBuf::from);
                    parsed.telemetry = parsed.telemetry || parsed.telemetry_out.is_some();
                }
                other => match extra.iter().find(|(name, _)| *name == other) {
                    Some((_, true)) => {
                        it.next();
                    }
                    Some((_, false)) => {}
                    None => return Err(Self::usage(other, extra)),
                },
            }
        }
        Ok(parsed)
    }

    fn usage(bad: &str, extra: &[ExtraFlag]) -> String {
        let mut flags = String::from(
            "[--quick] [--report PATH] [--perfetto PATH] [--telemetry] [--telemetry-out PATH]",
        );
        for (name, takes_value) in extra {
            flags.push_str(&format!(
                " [{name}{}]",
                if *takes_value { " VALUE" } else { "" }
            ));
        }
        format!("error: unknown argument '{bad}'\nusage: {flags}")
    }
}

/// Run an artifact's body, optionally capturing every simulator run it
/// performs into a [`hpcbd_obs::RunReport`].
///
/// With neither `--report` nor `--perfetto` this is a plain call to `f`
/// — no capture, no tracing, zero overhead. Otherwise the body is
/// bracketed with [`hpcbd_simnet::begin_capture`] /
/// [`hpcbd_simnet::end_capture`] (which forces tracing on inside the
/// engine), the report is built, written, and its text rendering is
/// printed after the artifact's own output.
pub fn run_with_report<R>(artifact: &str, args: &BenchArgs, f: impl FnOnce() -> R) -> R {
    if args.report.is_none() && args.perfetto.is_none() && !args.telemetry {
        return f();
    }
    // `--telemetry` turns the sampler on for the capture window:
    // HPCBD_TELEMETRY picks the interval, else the default tick. The
    // prior interval is restored afterwards so library callers (tests)
    // don't leak sampling into later runs.
    let prev_interval = hpcbd_simnet::telemetry_interval();
    if args.telemetry {
        let interval = prev_interval.unwrap_or(hpcbd_simnet::DEFAULT_TELEMETRY_INTERVAL_NS);
        hpcbd_simnet::set_telemetry_interval(Some(interval));
    }
    // The self-profiler (HPCBD_SELFPROF) only matters when a report is
    // being captured — its counters surface as the report's
    // `host_profile` rows — so resolve the env here, not on every run.
    hpcbd_simnet::selfprof_from_env();
    hpcbd_simnet::begin_capture();
    let result = f();
    let captures = hpcbd_simnet::end_capture();
    hpcbd_simnet::set_telemetry_interval(prev_interval);
    let report = hpcbd_obs::RunReport::from_captures(artifact, args.quick, &captures);
    println!();
    print!("{}", report.render_text());
    if let Some(path) = &args.report {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("report written to {}", path.display()),
            Err(e) => eprintln!("failed to write report {}: {e}", path.display()),
        }
    }
    if let Some(path) = &args.telemetry_out {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("telemetry report written to {}", path.display()),
            Err(e) => eprintln!("failed to write telemetry {}: {e}", path.display()),
        }
    }
    if let Some(path) = &args.perfetto {
        match captures.first() {
            Some(cap) => {
                let graph = hpcbd_obs::match_events(&cap.events);
                let telemetry = report.sections.first().and_then(|s| s.telemetry.as_ref());
                let json = hpcbd_obs::to_perfetto_json_with_telemetry(cap, &graph, telemetry);
                match std::fs::write(path, json) {
                    Ok(()) => println!("perfetto trace written to {}", path.display()),
                    Err(e) => eprintln!("failed to write trace {}: {e}", path.display()),
                }
            }
            None => eprintln!("no simulator run captured; perfetto trace not written"),
        }
    }
    result
}

/// Standard banner for harness output.
pub fn banner(artifact: &str) {
    println!("==============================================================");
    println!("hpcbd reproduction — {artifact}");
    println!("(virtual times from the simulated Comet platform; see");
    println!(" EXPERIMENTS.md for the paper-vs-measured discussion)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()), &[]).expect("valid args")
    }

    #[test]
    fn parses_shared_flags() {
        let a = parse(&["--quick", "--report", "out.json"]);
        assert!(a.quick);
        assert_eq!(a.report.as_deref(), Some(std::path::Path::new("out.json")));
        assert!(a.perfetto.is_none());
    }

    #[test]
    fn unknown_flag_is_an_error_naming_the_flag() {
        let err = BenchArgs::parse_from(["--telemtry-out".to_string(), "t.json".to_string()], &[])
            .expect_err("typo must not be ignored");
        assert!(err.contains("--telemtry-out"), "message: {err}");
        assert!(err.contains("usage:"), "message: {err}");
    }

    #[test]
    fn declared_extra_flags_are_skipped_with_their_values() {
        let a = BenchArgs::parse_from(
            [
                "--out",
                "BENCH_simnet.json",
                "--digests",
                "--perfetto",
                "t.json",
            ]
            .iter()
            .map(|s| s.to_string()),
            &[("--out", true), ("--digests", false)],
        )
        .expect("declared extras are accepted");
        assert!(!a.quick);
        assert!(a.report.is_none());
        assert_eq!(a.perfetto.as_deref(), Some(std::path::Path::new("t.json")));
        // An undeclared extra still errors, and the usage line lists the
        // declared ones.
        let err = BenchArgs::parse_from(["--nope".to_string()], &[("--out", true)])
            .expect_err("undeclared flag");
        assert!(
            err.contains("--nope") && err.contains("[--out VALUE]"),
            "{err}"
        );
    }

    #[test]
    fn missing_value_yields_none() {
        let a = parse(&["--report"]);
        assert!(a.report.is_none());
    }

    #[test]
    fn telemetry_flag_parses_alone() {
        let a = parse(&["--telemetry"]);
        assert!(a.telemetry);
        assert!(a.telemetry_out.is_none());
    }

    #[test]
    fn telemetry_out_implies_telemetry() {
        let a = parse(&["--telemetry-out", "t.json"]);
        assert!(a.telemetry);
        assert_eq!(
            a.telemetry_out.as_deref(),
            Some(std::path::Path::new("t.json"))
        );
        // A dangling --telemetry-out neither crashes nor enables
        // sampling by accident.
        let b = parse(&["--telemetry-out"]);
        assert!(!b.telemetry);
        assert!(b.telemetry_out.is_none());
    }
}
