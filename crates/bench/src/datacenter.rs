//! The "busy datacenter day" scenario: every runtime's workloads
//! replayed concurrently through the multi-tenant scheduler
//! (DESIGN.md §16, `bench_datacenter`).
//!
//! Three sections run back to back on the same cluster spec:
//!
//! 1. **idle** — the open-loop sources trickle jobs onto a mostly-empty
//!    cluster; latency is pure service time, the SLO baseline.
//! 2. **contended** — diurnal query traffic peaks over a heavy batch +
//!    HPC backbone; queueing delay inflates the interactive tail.
//! 3. **contended-nopreempt** — the same offered load with preemption
//!    disabled: the control for what queue-share reclamation buys.
//!
//! Everything is virtual-time deterministic, so the rendered table is
//! byte-identical across sequential/parallel/speculative execution —
//! CI diffs the three.

use hpcbd_sched::{
    factory, quantile_ns, run, QueueSpec, RateProcess, ScenarioOutcome, ScenarioSpec, SourceSpec,
};
use hpcbd_simnet::SimDuration;

/// Offered-load level for a scenario section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Load {
    /// Sparse arrivals; no meaningful queueing.
    Idle,
    /// The diurnal rush hour over the batch backbone.
    Rush,
}

/// Cluster and workload scale for one section.
#[derive(Debug, Clone, Copy)]
struct Scale {
    nodes: u32,
    per_node: u32,
    rack_size: u32,
    horizon_s: f64,
    /// Interactive query input bytes (per job).
    query_bytes: u64,
    /// Batch AnswersCount input bytes (per job).
    batch_bytes: u64,
    /// PageRank logical edges (per job).
    edges: u64,
    /// PageRank logical vertices.
    vertices: u64,
    /// MPI gang width.
    ranks: u32,
    /// SHMEM gang width.
    pes: u32,
}

fn scale(quick: bool) -> Scale {
    if quick {
        Scale {
            nodes: 4,
            per_node: 4,
            rack_size: 2,
            horizon_s: 600.0,
            query_bytes: 6 << 30,
            batch_bytes: 48 << 30,
            edges: 512 << 20,
            vertices: 4 << 20,
            ranks: 8,
            pes: 4,
        }
    } else {
        Scale {
            nodes: 16,
            per_node: 8,
            rack_size: 4,
            horizon_s: 3600.0,
            query_bytes: 24 << 30,
            batch_bytes: 192 << 30,
            edges: 2048 << 20,
            vertices: 16 << 20,
            ranks: 16,
            pes: 8,
        }
    }
}

/// Build one scenario section. The queue table and job mix are fixed;
/// `load` scales the arrival processes, `preemption` toggles queue-share
/// reclamation.
pub fn scenario(load: Load, preemption: bool, quick: bool) -> ScenarioSpec {
    let s = scale(quick);
    let n = s.nodes;
    // Rush multiplies the offered load asymmetrically: the interactive
    // front-end gets busier but stays near its fair share (a bursty
    // query tier, not a runaway one), while the batch + HPC backbone is
    // oversubscribed well past the cluster — that is the regime where
    // share reclamation matters. Idle keeps the same mix sparse.
    let (fg_boost, bg_boost) = match load {
        Load::Idle => (1.0, 1.0),
        Load::Rush => (8.0, 20.0),
    };
    let sources = vec![
        // Interactive query front-end: Spark AnswersCount, two tenants,
        // diurnal rate (one "day" = the horizon).
        SourceSpec {
            name: "queries",
            process: RateProcess::Diurnal {
                base_per_s: 0.004 * fg_boost,
                peak_per_s: 0.04 * fg_boost,
                period_s: s.horizon_s,
            },
            factory: factory(move |k| {
                hpcbd_minspark::scheduled_answers(
                    "interactive",
                    if k % 2 == 0 { "web" } else { "mobile" },
                    s.query_bytes,
                    4,
                    n,
                )
            }),
        },
        // Batch backbone: Hadoop AnswersCount over the full dump.
        SourceSpec {
            name: "etl",
            process: RateProcess::Poisson {
                rate_per_s: 0.002 * bg_boost,
            },
            factory: factory(move |_| {
                hpcbd_minmapreduce::scheduled_answers("batch", "etl", s.batch_bytes, 8, 2, n)
            }),
        },
        // Batch analytics: Spark PageRank (shuffle-heavy).
        SourceSpec {
            name: "analytics",
            process: RateProcess::Poisson {
                rate_per_s: 0.0015 * bg_boost,
            },
            factory: factory(move |_| {
                hpcbd_minspark::scheduled_pagerank("batch", "science", s.vertices, s.edges, 3, 4, n)
            }),
        },
        // HPC backbone: gang-scheduled MPI PageRank…
        SourceSpec {
            name: "mpi",
            process: RateProcess::Poisson {
                rate_per_s: 0.0015 * bg_boost,
            },
            factory: factory(move |_| {
                hpcbd_minimpi::scheduled_pagerank("hpc", "sim", s.vertices, s.edges, 3, s.ranks)
            }),
        },
        // …SHMEM PageRank…
        SourceSpec {
            name: "shmem",
            process: RateProcess::Poisson {
                rate_per_s: 0.001 * bg_boost,
            },
            factory: factory(move |_| {
                hpcbd_minshmem::scheduled_pagerank("hpc", "sim", s.vertices, s.edges, 3, s.pes)
            }),
        },
        // …and single-node OpenMP scans.
        SourceSpec {
            name: "omp",
            process: RateProcess::Poisson {
                rate_per_s: 0.001 * bg_boost,
            },
            factory: factory(move |_| {
                hpcbd_minomp::scheduled_answers("hpc", "sim", s.query_bytes, 8, 4)
            }),
        },
    ];
    ScenarioSpec {
        name: match (load, preemption) {
            (Load::Idle, _) => "idle",
            (Load::Rush, true) => "contended",
            (Load::Rush, false) => "contended-nopreempt",
        },
        nodes: s.nodes,
        per_node: s.per_node,
        rack_size: s.rack_size,
        horizon_s: s.horizon_s,
        seed: 0xDA7ACE47,
        locality_delay: SimDuration::from_secs(2),
        preemption,
        queues: vec![
            // The interactive weight is deliberately generous: its
            // guaranteed share covers the diurnal peak, so under rush it
            // is the starved beneficiary of preemption, not a victim.
            QueueSpec::new("interactive", 10).slo_ns(30_000_000_000),
            QueueSpec::new("batch", 2),
            QueueSpec::new("hpc", 4),
        ],
        sources,
    }
}

/// Render one section's outcome as a deterministic text table.
pub fn render(out: &ScenarioOutcome, name: &str) -> String {
    let mut s = String::new();
    let ms = |ns: u64| ns as f64 / 1e6;
    s.push_str(&format!(
        "--- {name}: {} jobs offered, makespan {:.1} s, fairness(max/min weighted share) {}\n",
        out.offered,
        out.makespan_ns as f64 / 1e9,
        match out.stats.fairness_x1000 {
            Some(x) => format!("{:.3}", x as f64 / 1000.0),
            None => "n/a".into(),
        },
    ));
    s.push_str(
        "queue        | jobs |   p50 ms |   p99 ms |  p999 ms | wait p99 ms | slo-met | preempt | local/rack/any\n",
    );
    for q in &out.stats.queues {
        s.push_str(&format!(
            "{:<12} | {:>4} | {:>8.1} | {:>8.1} | {:>8.1} | {:>11.1} | {:>7} | {:>7} | {}/{}/{}\n",
            q.name,
            q.completed,
            ms(quantile_ns(&q.latency_ns, 0.5)),
            ms(quantile_ns(&q.latency_ns, 0.99)),
            ms(quantile_ns(&q.latency_ns, 0.999)),
            ms(quantile_ns(&q.wait_ns, 0.99)),
            q.slo_met,
            q.preemptions,
            q.local,
            q.rack,
            q.remote,
        ));
    }
    s
}

/// Run all three sections in order (idle, contended,
/// contended-nopreempt) and return their outcomes with rendered tables.
pub fn run_all(quick: bool) -> Vec<(&'static str, ScenarioOutcome)> {
    [
        scenario(Load::Idle, true, quick),
        scenario(Load::Rush, true, quick),
        scenario(Load::Rush, false, quick),
    ]
    .into_iter()
    .map(|spec| (spec.name, run(&spec)))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sections_complete_all_offered_jobs() {
        let spec = scenario(Load::Idle, true, true);
        let out = run(&spec);
        assert!(out.offered > 0);
        let done: u64 = out.stats.queues.iter().map(|q| q.completed).sum();
        assert_eq!(done, out.offered);
    }

    #[test]
    fn rush_inflates_interactive_tail_latency() {
        let idle = run(&scenario(Load::Idle, true, true));
        let rush = run(&scenario(Load::Rush, true, true));
        let p99 = |o: &ScenarioOutcome| {
            let q = &o.stats.queues[0];
            assert_eq!(q.name, "interactive");
            quantile_ns(&q.latency_ns, 0.99)
        };
        assert!(
            p99(&rush) > p99(&idle),
            "contention must inflate the interactive tail: idle {} rush {}",
            p99(&idle),
            p99(&rush)
        );
    }

    #[test]
    fn preemption_protects_the_interactive_queue() {
        let with = run(&scenario(Load::Rush, true, true));
        let without = run(&scenario(Load::Rush, false, true));
        // Preemption trades batch progress for the interactive tier:
        // more queries inside the SLO and a shorter queueing tail.
        let slo = |o: &ScenarioOutcome| o.stats.queues[0].slo_met;
        assert!(
            slo(&with) >= slo(&without),
            "preemption must not lower interactive SLO attainment: with {} without {}",
            slo(&with),
            slo(&without)
        );
        let wait99 = |o: &ScenarioOutcome| quantile_ns(&o.stats.queues[0].wait_ns, 0.99);
        assert!(
            wait99(&with) <= wait99(&without),
            "preemption must not inflate interactive queueing delay: with {} without {}",
            wait99(&with),
            wait99(&without)
        );
        assert!(
            wait99(&with) > 0,
            "the rush must produce nonzero interactive queueing delay"
        );
        let kills: u64 = with.stats.queues.iter().map(|q| q.kills_sent).sum();
        let kills_off: u64 = without.stats.queues.iter().map(|q| q.kills_sent).sum();
        assert_eq!(kills_off, 0);
        assert!(kills > 0, "the rush must trigger at least one reclaim");
    }
}
