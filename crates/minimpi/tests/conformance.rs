//! Schedule-exploration conformance: a representative MPI job must be
//! bit-identical to the sequential oracle under perturbed legal
//! schedules (see `hpcbd_check::explore`).

use hpcbd_check::Explorer;
use hpcbd_cluster::Placement;
use hpcbd_minimpi::{mpirun, ReduceOp};

/// Allreduce + barrier + alltoall across 4 ranks on 2 nodes: the
/// collective mix fig3 stresses, at smoke scale.
fn collective_workload() {
    let out = mpirun(Placement::new(2, 2), |rank| {
        let v = vec![rank.rank() as f64 + 1.0; 8];
        let summed = rank.allreduce(ReduceOp::Sum, &v);
        rank.barrier();
        let (me, n) = (rank.rank(), rank.size());
        let chunks: Vec<Vec<u64>> = (0..n).map(|p| vec![(me * 10 + p) as u64]).collect();
        let gathered = rank.alltoall(chunks);
        (summed, gathered)
    });
    // 1+2+3+4 = 10 in every allreduce slot; slot `src` of the alltoall
    // holds what `src` addressed to us.
    for (me, (summed, gathered)) in out.results.iter().enumerate() {
        assert!(summed.iter().all(|x| *x == 10.0));
        let expect: Vec<Vec<u64>> = (0..4).map(|src| vec![src * 10 + me as u64]).collect();
        assert_eq!(*gathered, expect);
    }
}

#[test]
fn mpi_collectives_are_schedule_independent() {
    Explorer::new(0x4D50)
        .schedules(8)
        .threads(4)
        .explore(collective_workload)
        .assert_deterministic();
}
