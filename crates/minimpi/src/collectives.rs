//! Collective operations with the algorithm selection real MPI
//! implementations perform.
//!
//! The paper attributes MPI's reduce-microbenchmark win partly to
//! "reduction and communication algorithms ... well tuned depending on
//! the array size and other parameters" (Sec. V-B1). This module
//! reproduces that structure:
//!
//! * barrier — dissemination (⌈log₂ n⌉ rounds);
//! * broadcast — binomial tree;
//! * reduce — binomial reduction tree;
//! * allreduce — recursive doubling for short vectors, Rabenseifner-style
//!   ring (reduce-scatter + allgather) past [`ALLREDUCE_RING_THRESHOLD`];
//! * scatter/gather — linear rooted;
//! * allgather — ring;
//! * alltoall — pairwise exchange.
//!
//! Every collective is validated against a sequential oracle in the
//! crate's tests and property tests.

use std::sync::Arc;

use crate::datatype::{MpiScalar, ReduceOp};
use crate::rank::MpiRank;

pub use hpcbd_simnet::ALLREDUCE_RING_THRESHOLD;
use hpcbd_simnet::{allreduce_algo, AllreduceAlgo};

impl MpiRank<'_> {
    /// MPI_Barrier: dissemination algorithm.
    pub fn barrier(&mut self) {
        let tag = self.next_coll_tag();
        let n = self.size();
        if n == 1 {
            return;
        }
        self.ctx.span_open("mpi/barrier");
        let me = self.rank();
        let mut step = 1u32;
        while step < n {
            let dst = (me + step) % n;
            let src = (me + n - step) % n;
            self.send_arc::<u8>(dst, tag, Arc::new(Vec::new()));
            let _ = self.recv::<u8>(Some(src), tag);
            step <<= 1;
        }
        self.ctx.span_close();
    }

    /// MPI_Bcast: binomial tree rooted at `root`.
    pub fn bcast<T: MpiScalar>(&mut self, root: u32, data: Option<Arc<Vec<T>>>) -> Arc<Vec<T>> {
        let tag = self.next_coll_tag();
        let n = self.size();
        let me = self.rank();
        self.ctx.span_open("mpi/bcast");
        // Re-number so the root is virtual rank 0.
        let vrank = (me + n - root) % n;
        let mut buf: Option<Arc<Vec<T>>> = if me == root {
            Some(data.expect("root must supply the broadcast buffer"))
        } else {
            None
        };
        // Binomial tree: the parent of virtual rank v is v with its lowest
        // set bit cleared; its children are v | bit for every bit below
        // the lowest set bit (all bits for v = 0).
        if vrank != 0 {
            let parent_vrank = vrank & (vrank - 1);
            let parent_rank = (parent_vrank + root) % n;
            let (v, _) = self.recv::<T>(Some(parent_rank), tag);
            buf = Some(v);
        }
        let buf = buf.expect("broadcast buffer present after receive");
        let mut bit = 1u32;
        while bit < n && vrank & bit == 0 {
            let child_v = vrank | bit;
            if child_v < n {
                let child = (child_v + root) % n;
                self.send_arc(child, tag, buf.clone());
            }
            bit <<= 1;
        }
        self.ctx.span_close();
        buf
    }

    /// MPI_Reduce: binomial tree combining towards `root`. Every rank
    /// passes its contribution; the root returns the combined vector,
    /// non-roots return `None`.
    pub fn reduce<T: MpiScalar>(&mut self, root: u32, op: ReduceOp, data: &[T]) -> Option<Vec<T>> {
        let tag = self.next_coll_tag();
        let n = self.size();
        let me = self.rank();
        self.ctx.span_open("mpi/reduce");
        let vrank = (me + n - root) % n;
        let mut acc: Vec<T> = data.to_vec();
        let mut bit = 1u32;
        loop {
            if vrank & bit != 0 {
                // Send to parent and stop.
                let parent_v = vrank ^ bit;
                let parent = (parent_v + root) % n;
                self.send_arc(parent, tag, Arc::new(acc));
                self.ctx.span_close();
                return None;
            }
            let child_v = vrank | bit;
            if child_v < n {
                let child = (child_v + root) % n;
                let (v, _) = self.recv::<T>(Some(child), tag);
                op.combine_into(&mut acc, &v);
                // Local combine cost: one op + one load per element.
                self.charge_elementwise::<T>(acc.len());
            }
            bit <<= 1;
            if bit >= n {
                break;
            }
        }
        self.ctx.span_close();
        if me == root {
            Some(acc)
        } else {
            // Only reachable when vrank==0 but me!=root, impossible.
            unreachable!("non-root finished reduce without sending")
        }
    }

    /// MPI_Allreduce with size-dependent algorithm selection.
    pub fn allreduce<T: MpiScalar>(&mut self, op: ReduceOp, data: &[T]) -> Vec<T> {
        let bytes = data.len() as u64 * T::BYTES;
        if self.size() == 1 {
            return data.to_vec();
        }
        // Selection goes through the memoized cost-model table: PageRank
        // evaluates the identical (comm, bytes) key every iteration.
        self.ctx.span_open("mpi/allreduce");
        let acc = match allreduce_algo(self.size(), bytes) {
            AllreduceAlgo::RecursiveDoubling => self.allreduce_recursive_doubling(op, data),
            AllreduceAlgo::Ring => self.allreduce_ring(op, data),
        };
        self.ctx.span_close();
        acc
    }

    /// Recursive doubling: ⌈log₂ n⌉ exchange rounds, each with the full
    /// vector. Latency-optimal for short vectors. Non-power-of-two sizes
    /// fold the stragglers into the nearest power of two first.
    pub fn allreduce_recursive_doubling<T: MpiScalar>(
        &mut self,
        op: ReduceOp,
        data: &[T],
    ) -> Vec<T> {
        let tag = self.next_coll_tag();
        let n = self.size();
        let me = self.rank();
        let mut acc = data.to_vec();
        let pof2 = if n.is_power_of_two() {
            n
        } else {
            1 << (31 - n.leading_zeros())
        };
        let rem = n - pof2;
        // Phase 0: ranks >= pof2 send their data to rank - pof2.
        let mut participating = true;
        if me >= pof2 {
            self.send_arc((me - pof2) % n, tag, Arc::new(acc.clone()));
            participating = false;
        } else if me < rem {
            let (v, _) = self.recv::<T>(Some(me + pof2), tag);
            op.combine_into(&mut acc, &v);
            self.charge_elementwise::<T>(acc.len());
        }
        if participating {
            let mut mask = 1u32;
            while mask < pof2 {
                let peer = me ^ mask;
                self.send_arc(peer, tag + 1, Arc::new(acc.clone()));
                let (v, _) = self.recv::<T>(Some(peer), tag + 1);
                op.combine_into(&mut acc, &v);
                self.charge_elementwise::<T>(acc.len());
                mask <<= 1;
            }
        }
        // Phase 2: send results back to the folded ranks.
        if me < rem {
            self.send_arc(me + pof2, tag + 2, Arc::new(acc.clone()));
        } else if me >= pof2 {
            let (v, _) = self.recv::<T>(Some(me - pof2), tag + 2);
            acc = (*v).clone();
        }
        // Reserve the tags used by the sub-phases.
        self.skip_coll_tags(2);
        acc
    }

    /// Ring allreduce (reduce-scatter + allgather): 2(n-1) steps each
    /// moving 1/n of the vector — bandwidth-optimal for large vectors.
    pub fn allreduce_ring<T: MpiScalar>(&mut self, op: ReduceOp, data: &[T]) -> Vec<T> {
        let tag = self.next_coll_tag();
        let n = self.size() as usize;
        let me = self.rank() as usize;
        let len = data.len();
        let mut acc = data.to_vec();
        if n == 1 {
            return acc;
        }
        // Chunk boundaries: chunk c covers [starts[c], starts[c+1]).
        let starts: Vec<usize> = (0..=n).map(|c| c * len / n).collect();
        let right = ((me + 1) % n) as u32;
        let left = ((me + n - 1) % n) as u32;
        // Reduce-scatter.
        for step in 0..n - 1 {
            let send_chunk = (me + n - step) % n;
            let recv_chunk = (me + n - step - 1) % n;
            let s = acc[starts[send_chunk]..starts[send_chunk + 1]].to_vec();
            self.send_arc(right, tag, std::sync::Arc::new(s));
            let (v, _) = self.recv::<T>(Some(left), tag);
            let dst = &mut acc[starts[recv_chunk]..starts[recv_chunk + 1]];
            op.combine_into(dst, &v);
            self.charge_elementwise::<T>(dst.len());
        }
        // Allgather.
        for step in 0..n - 1 {
            let send_chunk = (me + 1 + n - step) % n;
            let recv_chunk = (me + n - step) % n;
            let s = acc[starts[send_chunk]..starts[send_chunk + 1]].to_vec();
            self.send_arc(right, tag, std::sync::Arc::new(s));
            let (v, _) = self.recv::<T>(Some(left), tag);
            acc[starts[recv_chunk]..starts[recv_chunk + 1]].copy_from_slice(&v);
        }
        acc
    }

    /// MPI_Scatter: root splits `data` into `size` equal chunks.
    pub fn scatter<T: MpiScalar>(&mut self, root: u32, data: Option<&[T]>) -> Vec<T> {
        let tag = self.next_coll_tag();
        let n = self.size();
        let me = self.rank();
        self.ctx.span_open("mpi/scatter");
        let out = if me == root {
            let data = data.expect("root must supply scatter buffer");
            assert!(
                data.len().is_multiple_of(n as usize),
                "scatter buffer must divide evenly"
            );
            let chunk = data.len() / n as usize;
            let mut mine = Vec::new();
            for r in 0..n {
                let part = &data[r as usize * chunk..(r as usize + 1) * chunk];
                if r == me {
                    mine = part.to_vec();
                } else {
                    self.send_arc(r, tag, std::sync::Arc::new(part.to_vec()));
                }
            }
            mine
        } else {
            let (v, _) = self.recv::<T>(Some(root), tag);
            (*v).clone()
        };
        self.ctx.span_close();
        out
    }

    /// MPI_Gather: inverse of scatter; root returns the concatenation in
    /// rank order.
    pub fn gather<T: MpiScalar>(&mut self, root: u32, data: &[T]) -> Option<Vec<T>> {
        let tag = self.next_coll_tag();
        let n = self.size();
        let me = self.rank();
        self.ctx.span_open("mpi/gather");
        let out = if me == root {
            let mut parts: Vec<Vec<T>> = vec![Vec::new(); n as usize];
            parts[me as usize] = data.to_vec();
            for _ in 0..n - 1 {
                let spec_any = None;
                let (v, src) = self.recv::<T>(spec_any, tag);
                parts[src as usize] = (*v).clone();
            }
            Some(parts.concat())
        } else {
            self.send_arc(root, tag, std::sync::Arc::new(data.to_vec()));
            None
        };
        self.ctx.span_close();
        out
    }

    /// MPI_Allgather: ring algorithm; returns rank-ordered concatenation
    /// on every rank.
    pub fn allgather<T: MpiScalar>(&mut self, data: &[T]) -> Vec<T> {
        let tag = self.next_coll_tag();
        let n = self.size() as usize;
        let me = self.rank() as usize;
        self.ctx.span_open("mpi/allgather");
        let mut parts: Vec<Vec<T>> = vec![Vec::new(); n];
        parts[me] = data.to_vec();
        let right = ((me + 1) % n) as u32;
        let left = ((me + n - 1) % n) as u32;
        for step in 0..n - 1 {
            let send_idx = (me + n - step) % n;
            let recv_idx = (me + n - step - 1) % n;
            self.send_arc(right, tag, std::sync::Arc::new(parts[send_idx].clone()));
            let (v, _) = self.recv::<T>(Some(left), tag);
            parts[recv_idx] = (*v).clone();
        }
        self.ctx.span_close();
        parts.concat()
    }

    /// MPI_Alltoall: pairwise exchange; `chunks[r]` goes to rank `r`, the
    /// result's slot `r` holds what rank `r` sent us.
    pub fn alltoall<T: MpiScalar>(&mut self, chunks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let tag = self.next_coll_tag();
        let n = self.size();
        let me = self.rank();
        assert_eq!(chunks.len(), n as usize, "one chunk per destination");
        self.ctx.span_open("mpi/alltoall");
        let mut out: Vec<Vec<T>> = vec![Vec::new(); n as usize];
        out[me as usize] = chunks[me as usize].clone();
        // Rotated pairwise exchange: in step s we send to me+s and receive
        // from me-s. Sends are eager, so the send/recv order cannot
        // deadlock for any communicator size.
        for step in 1..n {
            let dst = (me + step) % n;
            let src = (me + n - step) % n;
            self.send_arc(dst, tag, std::sync::Arc::new(chunks[dst as usize].clone()));
            let (v, _) = self.recv::<T>(Some(src), tag);
            out[src as usize] = (*v).clone();
        }
        self.ctx.span_close();
        out
    }

    /// Sparse personalized all-to-all (MPI_Alltoallv for mostly-empty
    /// send matrices), via the Bruck rotation.
    ///
    /// `items` is this rank's outgoing traffic as `(dst, payload)` pairs;
    /// the result is the incoming traffic as `(src, payload)` pairs, in
    /// unspecified order. Semantically equivalent to [`MpiRank::alltoall`]
    /// with empty chunks for silent destinations, but the cost scales as
    /// O(log n) messages per rank instead of O(n): round `k` forwards to
    /// rank `me + 2^k (mod n)` every held item whose remaining hop
    /// distance `(dst - me) mod n` has bit `k` set, so each item reaches
    /// its destination in at most ⌈log₂ n⌉ hops and each rank exchanges
    /// exactly one (possibly empty) message per round. At a full Comet
    /// (47,616 ranks) that is 16 messages per rank where the dense
    /// exchange would send 47,615 — the difference between a feasible and
    /// an O(n²)-message PageRank edge exchange. Works for any
    /// communicator size, including non-powers-of-two. Fully
    /// synchronizing: every rank participates in every round.
    pub fn alltoallv_sparse<T: MpiScalar>(
        &mut self,
        items: Vec<(u32, Vec<T>)>,
    ) -> Vec<(u32, Vec<T>)> {
        let tag = self.next_coll_tag();
        let n = self.size();
        let me = self.rank();
        self.ctx.span_open("mpi/alltoallv_sparse");
        let mut mine: Vec<(u32, Vec<T>)> = Vec::new();
        // In-flight routing state: (origin, destination, payload).
        let mut held: Vec<(u32, u32, Vec<T>)> = Vec::new();
        for (dst, v) in items {
            assert!(dst < n, "alltoallv_sparse destination {dst} out of range");
            if dst == me {
                mine.push((me, v));
            } else {
                held.push((me, dst, v));
            }
        }
        let mut k = 0u32;
        while (1u64 << k) < n as u64 {
            let offset = 1u32 << k;
            let to = (me + offset) % n;
            let from = (me + n - offset) % n;
            let (batch, keep): (Vec<_>, Vec<_>) = held
                .into_iter()
                .partition(|&(_, dst, _)| ((dst + n - me) % n) & offset != 0);
            held = keep;
            // Wire size: payload elements plus an 8-byte routing header
            // per item (origin + destination).
            let bytes: u64 = batch
                .iter()
                .map(|(_, _, v)| v.len() as u64 * T::BYTES + 8)
                .sum();
            let bytes = (bytes as f64 * self.bytes_scale) as u64;
            let tr = *self.transport_to(to);
            let pid = self.map.pid(to);
            self.ctx
                .send(pid, tag, bytes, hpcbd_simnet::Payload::value(batch), &tr);
            let spec = hpcbd_simnet::MatchSpec {
                src: Some(self.map.pid(from)),
                tag: Some(tag),
            };
            let msg = self.ctx.recv(spec);
            let received = msg.expect_value::<Vec<(u32, u32, Vec<T>)>>();
            let mut elems = 0usize;
            for (src, dst, v) in received.iter() {
                elems += v.len();
                if *dst == me {
                    mine.push((*src, v.clone()));
                } else {
                    held.push((*src, *dst, v.clone()));
                }
            }
            // Repacking cost of the received batch.
            if elems > 0 {
                self.charge_elementwise::<T>(elems);
            }
            k += 1;
        }
        debug_assert!(held.is_empty(), "undelivered alltoallv_sparse items");
        self.ctx.span_close();
        mine
    }

    /// MPI_Reduce_scatter_block: element-wise reduce of a `size *
    /// block`-element vector, rank `r` keeping block `r`. Implemented as
    /// the reduce-scatter phase of the ring (bandwidth-optimal).
    pub fn reduce_scatter_block<T: MpiScalar>(&mut self, op: ReduceOp, data: &[T]) -> Vec<T> {
        let n = self.size() as usize;
        let me = self.rank() as usize;
        assert!(
            data.len().is_multiple_of(n),
            "reduce_scatter_block needs size*block elements"
        );
        let block = data.len() / n;
        if n == 1 {
            return data.to_vec();
        }
        let tag = self.next_coll_tag();
        self.ctx.span_open("mpi/reduce_scatter");
        let mut acc = data.to_vec();
        let right = ((me + 1) % n) as u32;
        let left = ((me + n - 1) % n) as u32;
        // Chunk indices offset by -1 relative to the allreduce ring so
        // that rank `me` finishes holding exactly chunk `me`.
        for step in 0..n - 1 {
            let send_chunk = (me + n - step - 1) % n;
            let recv_chunk = (me + 2 * n - step - 2) % n;
            let s = acc[send_chunk * block..(send_chunk + 1) * block].to_vec();
            self.send_arc(right, tag, Arc::new(s));
            let (v, _) = self.recv::<T>(Some(left), tag);
            let dst = &mut acc[recv_chunk * block..(recv_chunk + 1) * block];
            op.combine_into(dst, &v);
            self.charge_elementwise::<T>(block);
        }
        self.ctx.span_close();
        acc[me * block..(me + 1) * block].to_vec()
    }

    /// MPI_Scan: inclusive prefix reduction — rank `r` receives the
    /// combination of ranks `0..=r`'s contributions. Linear pipeline.
    pub fn scan<T: MpiScalar>(&mut self, op: ReduceOp, data: &[T]) -> Vec<T> {
        let tag = self.next_coll_tag();
        let me = self.rank();
        let n = self.size();
        self.ctx.span_open("mpi/scan");
        let mut acc = data.to_vec();
        if me > 0 {
            let (prefix, _) = self.recv::<T>(Some(me - 1), tag);
            let mut combined = (*prefix).clone();
            op.combine_into(&mut combined, &acc);
            self.charge_elementwise::<T>(acc.len());
            acc = combined;
        }
        if me + 1 < n {
            self.send_arc(me + 1, tag, Arc::new(acc.clone()));
        }
        self.ctx.span_close();
        acc
    }

    /// Charge the CPU cost of one element-wise pass over `len` elements.
    fn charge_elementwise<T: MpiScalar>(&mut self, len: usize) {
        let w = hpcbd_simnet::Work::new(len as f64, len as f64 * T::BYTES as f64 * 2.0);
        self.ctx.compute(w, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use crate::launch::mpirun;
    use crate::{MpiScalar, ReduceOp};
    use hpcbd_cluster::Placement;
    use std::sync::Arc;

    fn per_rank_vec(rank: u32, len: usize) -> Vec<f64> {
        (0..len).map(|i| (rank as f64) + (i as f64) * 0.5).collect()
    }

    fn oracle_reduce(n: u32, len: usize, op: ReduceOp) -> Vec<f64> {
        let mut acc = per_rank_vec(0, len);
        for r in 1..n {
            op.combine_into(&mut acc, &per_rank_vec(r, len));
        }
        acc
    }

    #[test]
    fn barrier_completes_at_every_size() {
        for (nodes, ppn) in [(1, 1), (1, 3), (2, 2), (3, 5), (4, 4)] {
            let out = mpirun(Placement::new(nodes, ppn), |rank| {
                rank.barrier();
                rank.barrier();
                rank.rank()
            });
            assert_eq!(out.results.len(), (nodes * ppn) as usize);
        }
    }

    #[test]
    fn bcast_delivers_root_buffer_everywhere() {
        for n in [2u32, 3, 4, 7, 8] {
            for root in [0, n - 1] {
                let out = mpirun(Placement::new(1, n), move |rank| {
                    let data = if rank.rank() == root {
                        Some(Arc::new(vec![3.25f64, -1.0, root as f64]))
                    } else {
                        None
                    };
                    (*rank.bcast(root, data)).clone()
                });
                for r in out.results {
                    assert_eq!(r, vec![3.25, -1.0, root as f64]);
                }
            }
        }
    }

    #[test]
    fn reduce_matches_oracle() {
        for n in [1u32, 2, 3, 4, 6, 8] {
            for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
                let out = mpirun(Placement::new(1, n), move |rank| {
                    let data = per_rank_vec(rank.rank(), 16);
                    rank.reduce(0, op, &data)
                });
                let root_result = out.results[0].clone().expect("root gets the result");
                assert_eq!(root_result, oracle_reduce(n, 16, op));
                for r in &out.results[1..] {
                    assert!(r.is_none());
                }
            }
        }
    }

    #[test]
    fn allreduce_small_uses_recursive_doubling_and_matches_oracle() {
        for n in [2u32, 3, 5, 8] {
            let out = mpirun(Placement::new(1, n), move |rank| {
                rank.allreduce(ReduceOp::Sum, &per_rank_vec(rank.rank(), 8))
            });
            let expect = oracle_reduce(n, 8, ReduceOp::Sum);
            for r in out.results {
                assert_eq!(r, expect);
            }
        }
    }

    #[test]
    fn allreduce_large_uses_ring_and_matches_oracle() {
        // 32k f64 = 256 KB > threshold, power-of-two size triggers ring.
        let len = 32 * 1024;
        let out = mpirun(Placement::new(2, 2), move |rank| {
            rank.allreduce(ReduceOp::Sum, &per_rank_vec(rank.rank(), len))
        });
        let expect = oracle_reduce(4, len, ReduceOp::Sum);
        for r in out.results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn ring_and_doubling_agree() {
        let len = 1000;
        let out = mpirun(Placement::new(1, 4), move |rank| {
            let d = per_rank_vec(rank.rank(), len);
            let a = rank.allreduce_ring(ReduceOp::Sum, &d);
            let b = rank.allreduce_recursive_doubling(ReduceOp::Sum, &d);
            (a, b)
        });
        for (a, b) in out.results {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let out = mpirun(Placement::new(2, 2), |rank| {
            let root_buf: Vec<i64> = (0..16).collect();
            let mine = rank.scatter(
                0,
                if rank.rank() == 0 {
                    Some(&root_buf)
                } else {
                    None
                },
            );
            assert_eq!(mine.len(), 4);
            assert_eq!(mine[0], rank.rank() as i64 * 4);
            rank.gather(0, &mine)
        });
        assert_eq!(
            out.results[0].clone().unwrap(),
            (0..16).collect::<Vec<i64>>()
        );
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let out = mpirun(Placement::new(1, 3), |rank| {
            rank.allgather(&[rank.rank() as u64, 100 + rank.rank() as u64])
        });
        for r in out.results {
            assert_eq!(r, vec![0, 100, 1, 101, 2, 102]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let n = 4u32;
        let out = mpirun(Placement::new(2, 2), move |rank| {
            let me = rank.rank();
            let chunks: Vec<Vec<u32>> = (0..n).map(|dst| vec![me * 10 + dst]).collect();
            rank.alltoall(chunks)
        });
        for (me, rows) in out.results.iter().enumerate() {
            for (src, chunk) in rows.iter().enumerate() {
                assert_eq!(chunk, &vec![src as u32 * 10 + me as u32]);
            }
        }
    }

    #[test]
    fn alltoallv_sparse_matches_dense_alltoall() {
        // Every rank sends a distinct payload to every other rank; the
        // Bruck rotation must deliver the same (src, payload) multiset
        // the dense pairwise exchange produces, at every communicator
        // size including non-powers-of-two.
        for n in [1u32, 2, 3, 4, 5, 7, 8, 12] {
            let out = mpirun(Placement::new(1, n), move |rank| {
                let me = rank.rank();
                let items: Vec<(u32, Vec<u32>)> =
                    (0..n).map(|dst| (dst, vec![me * 100 + dst, me])).collect();
                let mut got = rank.alltoallv_sparse(items);
                got.sort();
                got
            });
            for (me, got) in out.results.iter().enumerate() {
                let expect: Vec<(u32, Vec<u32>)> = (0..n)
                    .map(|src| (src, vec![src * 100 + me as u32, src]))
                    .collect();
                assert_eq!(got, &expect, "n={n} me={me}");
            }
        }
    }

    #[test]
    fn alltoallv_sparse_handles_sparse_and_empty_traffic() {
        // Only rank 0 sends (to the last rank); everyone else has no
        // items but still participates in every round.
        let n = 6u32;
        let out = mpirun(Placement::new(2, 3), move |rank| {
            let me = rank.rank();
            let items: Vec<(u32, Vec<f64>)> = if me == 0 {
                vec![(n - 1, vec![2.5, -1.0])]
            } else {
                Vec::new()
            };
            rank.alltoallv_sparse(items)
        });
        for (me, got) in out.results.iter().enumerate() {
            if me as u32 == n - 1 {
                assert_eq!(got, &vec![(0u32, vec![2.5, -1.0])]);
            } else {
                assert!(got.is_empty(), "rank {me} received unexpected items");
            }
        }
    }

    #[test]
    fn alltoallv_sparse_self_items_and_composition() {
        let out = mpirun(Placement::new(1, 5), |rank| {
            let me = rank.rank();
            // Self-addressed item plus one to the next rank; then another
            // collective to confirm the tag counters stayed aligned.
            let got = rank.alltoallv_sparse(vec![
                (me, vec![me as i64]),
                ((me + 1) % 5, vec![-(me as i64)]),
            ]);
            let s = rank.allreduce(ReduceOp::Sum, &[1.0f64]);
            let mut got = got;
            got.sort();
            (got, s[0])
        });
        for (me, (got, s)) in out.results.iter().enumerate() {
            let me = me as u32;
            let prev = (me + 4) % 5;
            let mut expect = vec![(me, vec![me as i64]), (prev, vec![-(prev as i64)])];
            expect.sort();
            assert_eq!(got, &expect);
            assert_eq!(*s, 5.0);
        }
    }

    #[test]
    fn collectives_compose_without_tag_clashes() {
        let out = mpirun(Placement::new(1, 4), |rank| {
            let r = rank.rank();
            let s = rank.allreduce(ReduceOp::Sum, &[r as f64]);
            rank.barrier();
            let m = rank.allreduce(ReduceOp::Max, &[r as f64]);
            let b = rank.bcast(
                2,
                if r == 2 {
                    Some(Arc::new(vec![9.0f64]))
                } else {
                    None
                },
            );
            (s[0], m[0], b[0])
        });
        for (s, m, b) in out.results {
            assert_eq!((s, m, b), (6.0, 3.0, 9.0));
        }
    }

    #[test]
    fn large_allreduce_faster_with_ring_than_doubling() {
        // The tuned selection should pay off: compare virtual times.
        let len = 512 * 1024; // 4 MB of f64
        let ring = mpirun(Placement::new(4, 1), move |rank| {
            rank.allreduce_ring(ReduceOp::Sum, &vec![1.0f64; len]);
        })
        .elapsed();
        let doubling = mpirun(Placement::new(4, 1), move |rank| {
            rank.allreduce_recursive_doubling(ReduceOp::Sum, &vec![1.0f64; len]);
        })
        .elapsed();
        assert!(
            ring < doubling,
            "ring {ring} should beat recursive doubling {doubling} at 4MB"
        );
    }

    #[test]
    fn wire_size_constant_checks() {
        assert_eq!(<u32 as MpiScalar>::BYTES, 4);
    }

    #[test]
    fn reduce_scatter_block_matches_oracle() {
        for n in [1u32, 2, 4, 5, 8] {
            let block = 3usize;
            let out = mpirun(Placement::new(1, n), move |rank| {
                let data: Vec<f64> = (0..n as usize * block)
                    .map(|i| (rank.rank() as usize * 100 + i) as f64)
                    .collect();
                rank.reduce_scatter_block(ReduceOp::Sum, &data)
            });
            for (me, got) in out.results.iter().enumerate() {
                // Oracle: sum over ranks of their block `me`.
                let oracle: Vec<f64> = (0..block)
                    .map(|j| {
                        (0..n as usize)
                            .map(|r| (r * 100 + me * block + j) as f64)
                            .sum()
                    })
                    .collect();
                assert_eq!(got, &oracle, "n={n} me={me}");
            }
        }
    }

    #[test]
    fn scan_computes_inclusive_prefixes() {
        let out = mpirun(Placement::new(2, 3), |rank| {
            rank.scan(ReduceOp::Sum, &[rank.rank() as f64, 1.0])
        });
        for (me, got) in out.results.iter().enumerate() {
            let prefix: f64 = (0..=me).map(|r| r as f64).sum();
            assert_eq!(got, &vec![prefix, me as f64 + 1.0]);
        }
    }

    #[test]
    fn scan_max_and_composition_with_other_collectives() {
        let out = mpirun(Placement::new(1, 4), |rank| {
            let s = rank.scan(ReduceOp::Max, &[rank.rank() as f64 % 3.0]);
            rank.barrier();
            let rs = rank.reduce_scatter_block(ReduceOp::Sum, &[1.0f64; 4]);
            (s[0], rs[0])
        });
        assert_eq!(
            out.results,
            vec![(0.0, 4.0), (1.0, 4.0), (2.0, 4.0), (2.0, 4.0)]
        );
    }
}
