//! Coordinated checkpoint/restart — the HPC fault-tolerance story.
//!
//! The paper's fault-tolerance discussion (Sec. VI-D) contrasts Spark's
//! lineage-based recomputation with the "different checkpointing/restarting
//! algorithms" of distributed HPC frameworks: MPI itself does not recover
//! from faults at run time, so applications periodically write coordinated
//! checkpoints and, on failure, the *whole job* restarts from the last one.
//! This module models exactly that protocol; the `ablation_fault` harness
//! compares its cost against Spark's per-partition recomputation.

use hpcbd_simnet::SimTime;

use crate::rank::MpiRank;

/// Coordinated checkpointing driver for an iterative MPI application.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    /// Take a checkpoint every this many iterations (0 = never).
    pub interval: u32,
    /// Bytes of application state each rank persists per checkpoint.
    pub state_bytes_per_rank: u64,
    last_saved_iter: Option<u32>,
    checkpoints_taken: u32,
}

impl Checkpointer {
    /// New driver.
    pub fn new(interval: u32, state_bytes_per_rank: u64) -> Checkpointer {
        Checkpointer {
            interval,
            state_bytes_per_rank,
            last_saved_iter: None,
            checkpoints_taken: 0,
        }
    }

    /// Call after finishing iteration `iter` (0-based). Takes a coordinated
    /// checkpoint when the interval divides `iter + 1`: a global barrier
    /// (quiesce in-flight messages) followed by every rank writing its
    /// state to local scratch. Returns whether a checkpoint was taken.
    pub fn after_iteration(&mut self, rank: &mut MpiRank, iter: u32) -> bool {
        if self.interval == 0 || !(iter + 1).is_multiple_of(self.interval) {
            return false;
        }
        rank.barrier();
        rank.ctx().disk_write(self.state_bytes_per_rank);
        rank.barrier();
        self.last_saved_iter = Some(iter);
        self.checkpoints_taken += 1;
        true
    }

    /// The iteration execution resumes from after a failure: one past the
    /// last checkpointed iteration (or 0 when none was taken).
    pub fn restart_iteration(&self) -> u32 {
        self.last_saved_iter.map_or(0, |i| i + 1)
    }

    /// Model a restart: every rank re-reads its state from scratch (plus a
    /// job-relaunch stall), and execution resumes from
    /// [`Checkpointer::restart_iteration`]. Returns that iteration.
    pub fn restart(&self, rank: &mut MpiRank, relaunch_stall: hpcbd_simnet::SimDuration) -> u32 {
        rank.ctx().advance(relaunch_stall);
        if self.last_saved_iter.is_some() {
            rank.ctx().disk_read(self.state_bytes_per_rank);
        }
        rank.barrier();
        self.restart_iteration()
    }

    /// Number of checkpoints taken so far.
    pub fn taken(&self) -> u32 {
        self.checkpoints_taken
    }

    /// Virtual time of `rank` (convenience for instrumentation).
    pub fn now(rank: &MpiRank) -> SimTime {
        rank.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::mpirun;
    use hpcbd_cluster::Placement;
    use hpcbd_simnet::SimDuration;

    #[test]
    fn checkpoints_fire_on_interval() {
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(3, 1 << 20);
            let mut fired = vec![];
            for iter in 0..10 {
                if ck.after_iteration(rank, iter) {
                    fired.push(iter);
                }
            }
            (fired, ck.taken(), ck.restart_iteration())
        });
        for (fired, taken, resume) in out.results {
            assert_eq!(fired, vec![2, 5, 8]);
            assert_eq!(taken, 3);
            assert_eq!(resume, 9);
        }
    }

    #[test]
    fn zero_interval_never_checkpoints() {
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(0, 1 << 20);
            for iter in 0..5 {
                assert!(!ck.after_iteration(rank, iter));
            }
            ck.restart_iteration()
        });
        assert_eq!(out.results, vec![0, 0]);
    }

    #[test]
    fn checkpointing_costs_time() {
        let with = mpirun(Placement::new(2, 1), |rank| {
            let mut ck = Checkpointer::new(1, 256 << 20);
            for iter in 0..4 {
                ck.after_iteration(rank, iter);
            }
        })
        .elapsed();
        let without = mpirun(Placement::new(2, 1), |rank| {
            let mut ck = Checkpointer::new(0, 256 << 20);
            for iter in 0..4 {
                ck.after_iteration(rank, iter);
            }
        })
        .elapsed();
        assert!(
            with > without,
            "checkpointing must cost time: with={with} without={without}"
        );
    }

    #[test]
    fn restart_resumes_after_last_checkpoint() {
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(2, 1 << 10);
            for iter in 0..5 {
                ck.after_iteration(rank, iter);
            }
            // Fail at iteration 5; restart.
            ck.restart(rank, SimDuration::from_secs(2))
        });
        assert_eq!(out.results, vec![4, 4]);
    }
}
