//! Coordinated checkpoint/restart — the HPC fault-tolerance story.
//!
//! The paper's fault-tolerance discussion (Sec. VI-D) contrasts Spark's
//! lineage-based recomputation with the "different checkpointing/restarting
//! algorithms" of distributed HPC frameworks: MPI itself does not recover
//! from faults at run time, so applications periodically write coordinated
//! checkpoints and, on failure, the *whole job* restarts from the last one.
//! This module models exactly that protocol; the `ablation_fault` harness
//! compares its cost against Spark's per-partition recomputation.

use hpcbd_simnet::{FaultEvent, SimDuration, SimTime, Work};

use crate::datatype::ReduceOp;
use crate::rank::MpiRank;

/// What an MPI job does when a rank's node fails (Sec. VI-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPolicy {
    /// Default MPI semantics: the whole job aborts (`MPI_Abort`) — "MPI
    /// itself does not recover from faults at run time".
    Abort,
    /// Coordinated checkpoint/restart: the job relaunches from the last
    /// checkpoint after a scheduler stall.
    Restart {
        /// Scheduler/relaunch stall charged before ranks reload state.
        relaunch_stall: SimDuration,
    },
}

/// Coordinated checkpointing driver for an iterative MPI application.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    /// Take a checkpoint every this many iterations (0 = never).
    pub interval: u32,
    /// Bytes of application state each rank persists per checkpoint.
    pub state_bytes_per_rank: u64,
    last_saved_iter: Option<u32>,
    checkpoints_taken: u32,
    failures_handled: u64,
}

impl Checkpointer {
    /// New driver.
    pub fn new(interval: u32, state_bytes_per_rank: u64) -> Checkpointer {
        Checkpointer {
            interval,
            state_bytes_per_rank,
            last_saved_iter: None,
            checkpoints_taken: 0,
            failures_handled: 0,
        }
    }

    /// SPMD failure detection against the installed
    /// [`hpcbd_simnet::FaultPlan`]: every rank counts the node crashes
    /// visible at its own clock, then a MAX-allreduce makes the job agree
    /// on the most-advanced view (ranks' clocks differ; without the
    /// consensus a fast rank would handle a failure its peers have not
    /// seen and the next collective would deadlock). Returns `true` when
    /// a newly-failed node was detected — under
    /// [`FaultPolicy::Restart`], follow with
    /// [`Checkpointer::restart_replayed`]. Under [`FaultPolicy::Abort`]
    /// the call panics, which is what `MPI_Abort` does to a job.
    ///
    /// Call once per iteration, right after the iteration's collective.
    /// No fault plan installed (or no crashes in it) costs nothing.
    pub fn poll_plan_failure(&mut self, rank: &mut MpiRank, policy: FaultPolicy) -> bool {
        let nodes: u32 = {
            let placement = rank.placement();
            (0..rank.size())
                .map(|r| placement.node_of_rank(r).0 + 1)
                .max()
                .unwrap_or(0)
        };
        let (visible, any_planned) = {
            let ctx = rank.ctx();
            match ctx.fault_plan() {
                Some(plan) if !plan.crashes().is_empty() => {
                    let now = ctx.now();
                    (plan.crashes_through(nodes, now).len() as u64, true)
                }
                _ => (0, false),
            }
        };
        if !any_planned {
            return false;
        }
        let agreed = rank.allreduce(ReduceOp::Max, &[visible])[0];
        if agreed <= self.failures_handled {
            return false;
        }
        let all = {
            let ctx = rank.ctx();
            let plan = ctx.fault_plan().expect("plan checked above").clone();
            plan.crashes_through(nodes, SimTime(u64::MAX))
        };
        let newly = &all[self.failures_handled as usize..agreed as usize];
        for (node, _) in newly {
            rank.ctx().record_fault(FaultEvent::Recovery {
                runtime: "mpi",
                action: "rank_failure_detected",
                detail: u64::from(node.0),
            });
        }
        self.failures_handled = agreed;
        match policy {
            FaultPolicy::Abort => {
                let (node, at) = newly[0];
                panic!(
                    "MPI_Abort: node n{} failed at {at}; \
                     plain MPI has no run-time fault tolerance",
                    node.0
                );
            }
            FaultPolicy::Restart { .. } => true,
        }
    }

    /// Call after finishing iteration `iter` (0-based). Takes a coordinated
    /// checkpoint when the interval divides `iter + 1`: a global barrier
    /// (quiesce in-flight messages) followed by every rank writing its
    /// state to local scratch. Returns whether a checkpoint was taken.
    pub fn after_iteration(&mut self, rank: &mut MpiRank, iter: u32) -> bool {
        if self.interval == 0 || !(iter + 1).is_multiple_of(self.interval) {
            return false;
        }
        rank.barrier();
        rank.ctx().disk_write(self.state_bytes_per_rank);
        rank.barrier();
        self.last_saved_iter = Some(iter);
        self.checkpoints_taken += 1;
        true
    }

    /// The iteration execution resumes from after a failure: one past the
    /// last checkpointed iteration (or 0 when none was taken).
    pub fn restart_iteration(&self) -> u32 {
        self.last_saved_iter.map_or(0, |i| i + 1)
    }

    /// Model a restart: every rank re-reads its state from scratch (plus a
    /// job-relaunch stall), and execution resumes from
    /// [`Checkpointer::restart_iteration`]. Returns that iteration.
    pub fn restart(&self, rank: &mut MpiRank, relaunch_stall: hpcbd_simnet::SimDuration) -> u32 {
        rank.ctx().advance(relaunch_stall);
        if self.last_saved_iter.is_some() {
            rank.ctx().disk_read(self.state_bytes_per_rank);
        }
        rank.barrier();
        self.restart_iteration()
    }

    /// Like [`Checkpointer::restart`], but also charges the *replay* of the
    /// iterations lost since the last checkpoint: each re-executed
    /// iteration pays its compute plus the same collective traffic
    /// (an `allreduce` of `allreduce_elems` doubles and the checkpoint
    /// barriers) that the lost progress had already paid once. Earlier
    /// versions only charged the state reload, undercounting MPI's
    /// recovery cost versus Spark's lineage recomputation. Returns
    /// `failed_iter`: replay is charged internally, so the caller resumes
    /// *after* the failed iteration's lost work without looping back.
    pub fn restart_replayed(
        &mut self,
        rank: &mut MpiRank,
        relaunch_stall: SimDuration,
        failed_iter: u32,
        work_per_iter: Work,
        allreduce_elems: usize,
    ) -> u32 {
        let resume = self.restart(rank, relaunch_stall);
        rank.ctx().record_fault(FaultEvent::Recovery {
            runtime: "mpi",
            action: "checkpoint_restart",
            detail: u64::from(failed_iter.saturating_sub(resume)),
        });
        let zeros = vec![0.0f64; allreduce_elems];
        for iter in resume..failed_iter {
            rank.ctx().compute(work_per_iter, 1.0);
            if allreduce_elems > 0 {
                rank.allreduce(ReduceOp::Sum, &zeros);
            }
            self.after_iteration(rank, iter);
        }
        failed_iter
    }

    /// Number of checkpoints taken so far.
    pub fn taken(&self) -> u32 {
        self.checkpoints_taken
    }

    /// Virtual time of `rank` (convenience for instrumentation).
    pub fn now(rank: &MpiRank) -> SimTime {
        rank.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::mpirun;
    use hpcbd_cluster::Placement;
    use hpcbd_simnet::SimDuration;

    #[test]
    fn checkpoints_fire_on_interval() {
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(3, 1 << 20);
            let mut fired = vec![];
            for iter in 0..10 {
                if ck.after_iteration(rank, iter) {
                    fired.push(iter);
                }
            }
            (fired, ck.taken(), ck.restart_iteration())
        });
        for (fired, taken, resume) in out.results {
            assert_eq!(fired, vec![2, 5, 8]);
            assert_eq!(taken, 3);
            assert_eq!(resume, 9);
        }
    }

    #[test]
    fn zero_interval_never_checkpoints() {
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(0, 1 << 20);
            for iter in 0..5 {
                assert!(!ck.after_iteration(rank, iter));
            }
            ck.restart_iteration()
        });
        assert_eq!(out.results, vec![0, 0]);
    }

    #[test]
    fn checkpointing_costs_time() {
        let with = mpirun(Placement::new(2, 1), |rank| {
            let mut ck = Checkpointer::new(1, 256 << 20);
            for iter in 0..4 {
                ck.after_iteration(rank, iter);
            }
        })
        .elapsed();
        let without = mpirun(Placement::new(2, 1), |rank| {
            let mut ck = Checkpointer::new(0, 256 << 20);
            for iter in 0..4 {
                ck.after_iteration(rank, iter);
            }
        })
        .elapsed();
        assert!(
            with > without,
            "checkpointing must cost time: with={with} without={without}"
        );
    }

    #[test]
    #[should_panic(expected = "MPI_Abort")]
    fn abort_policy_panics_on_planned_failure() {
        use hpcbd_simnet::{FaultPlan, NodeId, Work};
        let _ = crate::launch::mpirun_faulty(
            Placement::new(2, 2),
            FaultPlan::new(1).crash_node(NodeId(1), SimTime(1_000)),
            |rank| {
                let mut ck = Checkpointer::new(2, 1 << 20);
                for iter in 0..10 {
                    rank.ctx().compute(Work::new(1_000_000.0, 0.0), 1.0);
                    rank.allreduce(ReduceOp::Sum, &[f64::from(iter)]);
                    ck.after_iteration(rank, iter);
                    ck.poll_plan_failure(rank, FaultPolicy::Abort);
                }
            },
        );
    }

    #[test]
    fn poll_is_free_without_a_plan() {
        let out = mpirun(Placement::new(2, 1), |rank| {
            let mut ck = Checkpointer::new(2, 1 << 10);
            let mut detected = 0u32;
            for iter in 0..4 {
                ck.after_iteration(rank, iter);
                if ck.poll_plan_failure(rank, FaultPolicy::Abort) {
                    detected += 1;
                }
            }
            detected
        });
        assert_eq!(out.results, vec![0, 0]);
    }

    #[test]
    fn planned_failure_restart_resumes_and_completes() {
        use hpcbd_simnet::{FaultPlan, NodeId, Work};
        let out = crate::launch::mpirun_faulty(
            Placement::new(2, 2),
            FaultPlan::new(9).crash_node(NodeId(1), SimTime(1_000)),
            |rank| {
                let mut ck = Checkpointer::new(2, 1 << 20);
                let work = Work::new(2_000_000.0, 0.0);
                let stall = SimDuration::from_secs(1);
                let mut sum = 0.0;
                let mut restarts = 0u32;
                let mut iter = 0u32;
                while iter < 8 {
                    rank.ctx().compute(work, 1.0);
                    sum = rank.allreduce(ReduceOp::Sum, &[f64::from(iter)])[0];
                    ck.after_iteration(rank, iter);
                    if ck.poll_plan_failure(
                        rank,
                        FaultPolicy::Restart {
                            relaunch_stall: stall,
                        },
                    ) {
                        restarts += 1;
                        iter = ck.restart_replayed(rank, stall, iter, work, 1);
                        continue;
                    }
                    iter += 1;
                }
                (sum, restarts)
            },
        );
        for (sum, restarts) in out.results {
            assert_eq!(restarts, 1, "exactly one planned failure handled");
            assert_eq!(sum, 7.0 * 4.0, "final allreduce correct after recovery");
        }
    }

    #[test]
    fn restart_replayed_charges_collective_replay() {
        use hpcbd_simnet::Work;
        fn run(replay: bool) -> SimTime {
            mpirun(Placement::new(2, 2), move |rank| {
                let mut ck = Checkpointer::new(4, 1 << 20);
                let work = Work::new(5_000_000.0, 0.0);
                for iter in 0..11 {
                    rank.ctx().compute(work, 1.0);
                    rank.allreduce(ReduceOp::Sum, &[f64::from(iter)]);
                    ck.after_iteration(rank, iter);
                }
                // The job fails at iteration 11 — three iterations past
                // the checkpoint taken after iteration 7.
                if replay {
                    ck.restart_replayed(rank, SimDuration::from_secs(2), 11, work, 1)
                } else {
                    ck.restart(rank, SimDuration::from_secs(2))
                }
            })
            .elapsed()
        }
        let plain = run(false);
        let replayed = run(true);
        assert!(
            replayed > plain,
            "replaying lost iterations (compute + collectives + retaken \
             checkpoints) must cost more than reloading state alone: \
             {replayed} vs {plain}"
        );
    }

    #[test]
    fn restart_resumes_after_last_checkpoint() {
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(2, 1 << 10);
            for iter in 0..5 {
                ck.after_iteration(rank, iter);
            }
            // Fail at iteration 5; restart.
            ck.restart(rank, SimDuration::from_secs(2))
        });
        assert_eq!(out.results, vec![4, 4]);
    }
}
