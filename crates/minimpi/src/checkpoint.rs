//! Checkpoint/restart — the HPC fault-tolerance story.
//!
//! The paper's fault-tolerance discussion (Sec. VI-D) contrasts Spark's
//! lineage-based recomputation with the "different checkpointing/restarting
//! algorithms" of distributed HPC frameworks: MPI itself does not recover
//! from faults at run time, so applications periodically write coordinated
//! checkpoints and, on failure, the *whole job* restarts from the last one.
//!
//! Two protocols are modeled (see `DESIGN.md` §13):
//!
//! * [`CheckpointMode::Coordinated`] — the PR-2 stop-the-world variant:
//!   barrier, synchronous state write, barrier, every interval. The write
//!   sits on the critical path.
//! * [`CheckpointMode::Async`] — algorithm-based asynchronous
//!   checkpointing (per the mixed MPI/GPI-2 study, `PAPERS.md`): at the
//!   interval barrier each rank copies its state into a double buffer
//!   (memory-bandwidth cost only) and resumes compute immediately while
//!   the buffer drains to scratch in background I/O
//!   ([`hpcbd_simnet::ProcCtx::disk_write_background`]). The catch is on
//!   the restart side: a crash that lands while a drain is in flight
//!   tears that file, so restart must fall back to the last **fully
//!   drained** checkpoint ([`hpcbd_simnet::DrainSchedule`]), agreed
//!   job-wide by a MIN-allreduce. Confusing the snapshot counter with
//!   the drain watermark is the classic bug this distinction exists for
//!   — plantable here as [`RecoveryBug::RestartUndrained`] so the
//!   fault-campaign explorer can prove it would catch it.

use std::any::Any;
use std::sync::Arc;

use hpcbd_simnet::{DrainSchedule, FaultEvent, SimDuration, SimTime, StructuredAbort, Work};

use crate::datatype::ReduceOp;
use crate::rank::MpiRank;

pub use hpcbd_simnet::{CheckpointMode, FaultPolicy};

/// A known recovery bug the harness can plant to prove the
/// fault-campaign explorer catches it (see `hpcbd-check`). Planted bugs
/// only change *recovery* decisions; fault-free runs are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryBug {
    /// Async restart trusts the snapshot counter instead of the drain
    /// watermark: after a crash that interrupts a drain, the job
    /// resumes at an iteration whose state never made it to disk — the
    /// reload comes up empty and the skipped iterations silently
    /// corrupt the result.
    RestartUndrained,
}

/// Checkpointing driver for an iterative MPI application.
#[derive(Clone)]
pub struct Checkpointer {
    /// Take a checkpoint every this many iterations (0 = never).
    pub interval: u32,
    /// Bytes of application state each rank persists per checkpoint.
    pub state_bytes_per_rank: u64,
    mode: CheckpointMode,
    bug: Option<RecoveryBug>,
    last_saved_iter: Option<u32>,
    checkpoints_taken: u32,
    failures_handled: u64,
    /// Virtual time of the most recent crash handled by
    /// [`Checkpointer::poll_plan_failure`] — identical on every rank
    /// (it comes from the agreed plan replay), and the cutoff against
    /// which drain durability is judged.
    last_crash_time: Option<SimTime>,
    drains: DrainSchedule,
    /// Snapshotted application payloads by iteration (the simulated
    /// "checkpoint file contents"). Restorable only when the matching
    /// drain was durable at the crash cutoff; see
    /// [`Checkpointer::restore_payload`].
    payloads: Vec<(u32, Arc<dyn Any + Send + Sync>)>,
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("interval", &self.interval)
            .field("state_bytes_per_rank", &self.state_bytes_per_rank)
            .field("mode", &self.mode)
            .field("bug", &self.bug)
            .field("last_saved_iter", &self.last_saved_iter)
            .field("checkpoints_taken", &self.checkpoints_taken)
            .field("failures_handled", &self.failures_handled)
            .field("last_crash_time", &self.last_crash_time)
            .field("drains", &self.drains)
            .field("payloads", &self.payloads.len())
            .finish()
    }
}

impl Checkpointer {
    /// New coordinated-mode driver (the historical default).
    pub fn new(interval: u32, state_bytes_per_rank: u64) -> Checkpointer {
        Checkpointer {
            interval,
            state_bytes_per_rank,
            mode: CheckpointMode::Coordinated,
            bug: None,
            last_saved_iter: None,
            checkpoints_taken: 0,
            failures_handled: 0,
            last_crash_time: None,
            drains: DrainSchedule::new(),
            payloads: Vec::new(),
        }
    }

    /// Select the checkpoint protocol (builder style).
    pub fn with_mode(mut self, mode: CheckpointMode) -> Checkpointer {
        self.mode = mode;
        self
    }

    /// The active protocol.
    pub fn mode(&self) -> CheckpointMode {
        self.mode
    }

    /// Plant a known recovery bug (harness self-tests only; see
    /// [`RecoveryBug`]).
    pub fn with_planted_bug(mut self, bug: RecoveryBug) -> Checkpointer {
        self.bug = Some(bug);
        self
    }

    /// SPMD failure detection against the installed
    /// [`hpcbd_simnet::FaultPlan`]: every rank counts the node crashes
    /// visible at its own clock, then a MAX-allreduce makes the job agree
    /// on the most-advanced view (ranks' clocks differ; without the
    /// consensus a fast rank would handle a failure its peers have not
    /// seen and the next collective would deadlock). Returns `true` when
    /// a newly-failed node was detected — under
    /// [`FaultPolicy::Restart`], follow with
    /// [`Checkpointer::restart_replayed`] (cost replay) or
    /// [`Checkpointer::restart_semantic`] (caller re-executes). Under
    /// [`FaultPolicy::Abort`] the call raises a [`StructuredAbort`],
    /// which is what `MPI_Abort` does to a job.
    ///
    /// Call once per iteration, right after the iteration's collective.
    /// No fault plan installed (or no crashes in it) costs nothing.
    pub fn poll_plan_failure(&mut self, rank: &mut MpiRank, policy: FaultPolicy) -> bool {
        let nodes: u32 = {
            let placement = rank.placement();
            (0..rank.size())
                .map(|r| placement.node_of_rank(r).0 + 1)
                .max()
                .unwrap_or(0)
        };
        let (visible, any_planned) = {
            let ctx = rank.ctx();
            match ctx.fault_plan() {
                Some(plan) if !plan.crashes().is_empty() => {
                    let now = ctx.now();
                    (plan.crashes_through(nodes, now).len() as u64, true)
                }
                _ => (0, false),
            }
        };
        if !any_planned {
            return false;
        }
        let agreed = rank.allreduce(ReduceOp::Max, &[visible])[0];
        if agreed <= self.failures_handled {
            return false;
        }
        let all = {
            let ctx = rank.ctx();
            let plan = ctx.fault_plan().expect("plan checked above").clone();
            plan.crashes_through(nodes, SimTime(u64::MAX))
        };
        let newly = &all[self.failures_handled as usize..agreed as usize];
        for (node, at) in newly {
            // Rank 0 back-dates the crash itself into the trace so the
            // recovery SLOs (time-to-detect) have the true fault time.
            if rank.rank() == 0 {
                rank.ctx()
                    .record_fault_at(*at, FaultEvent::NodeCrash { node: *node });
            }
            rank.ctx().record_fault(FaultEvent::Recovery {
                runtime: "mpi",
                action: "rank_failure_detected",
                detail: u64::from(node.0),
            });
        }
        self.failures_handled = agreed;
        // Every rank replays the same agreed prefix of the same plan, so
        // the cutoff is identical job-wide without further consensus.
        self.last_crash_time = newly.last().map(|&(_, t)| t);
        match policy {
            FaultPolicy::Abort => {
                let (node, at) = newly[0];
                StructuredAbort::raise(
                    "mpi",
                    format!(
                        "MPI_Abort: node n{} failed at {at}; \
                         plain MPI has no run-time fault tolerance",
                        node.0
                    ),
                );
            }
            FaultPolicy::Restart { .. } => true,
        }
    }

    /// Call after finishing iteration `iter` (0-based). Checkpoints when
    /// the interval divides `iter + 1`. Coordinated mode: global barrier
    /// (quiesce in-flight messages), synchronous state write, barrier.
    /// Async mode: barrier, double-buffer copy at memory bandwidth, then
    /// a background drain registered with its device completion time —
    /// compute resumes immediately. Returns whether a checkpoint (or
    /// snapshot) was taken.
    pub fn after_iteration(&mut self, rank: &mut MpiRank, iter: u32) -> bool {
        if self.interval == 0 || !(iter + 1).is_multiple_of(self.interval) {
            return false;
        }
        rank.barrier();
        match self.mode {
            CheckpointMode::Coordinated => {
                let issue = rank.now();
                rank.ctx().disk_write(self.state_bytes_per_rank);
                let done = rank.now();
                rank.ctx().metric_observe(
                    "ckpt.drain_lag_ns",
                    "mode=coordinated",
                    (done - issue).nanos(),
                );
                rank.barrier();
                self.drains.register(iter, issue, done);
            }
            CheckpointMode::Async => {
                // Copy state into the drain buffer: memory traffic only
                // (read + write of the state), no barrier afterwards.
                rank.ctx()
                    .compute(Work::new(0.0, 2.0 * self.state_bytes_per_rank as f64), 1.0);
                let issue = rank.now();
                let done = rank.ctx().disk_write_background(self.state_bytes_per_rank);
                rank.ctx().metric_observe(
                    "ckpt.drain_lag_ns",
                    "mode=async",
                    (done - issue).nanos(),
                );
                self.drains.register(iter, issue, done);
            }
        }
        self.last_saved_iter = Some(iter);
        self.checkpoints_taken += 1;
        true
    }

    /// [`Checkpointer::after_iteration`] plus payload capture: when the
    /// checkpoint fires, `state` is evaluated and stored as the simulated
    /// contents of this rank's checkpoint file, retrievable by
    /// [`Checkpointer::restore_payload`] after a crash — but only if the
    /// drain made it durable in time.
    pub fn after_iteration_with<P: Clone + Send + Sync + 'static>(
        &mut self,
        rank: &mut MpiRank,
        iter: u32,
        state: impl FnOnce() -> P,
    ) -> bool {
        if !self.after_iteration(rank, iter) {
            return false;
        }
        // A restart rewound the counter: entries at or past `iter` are
        // stale pre-crash snapshots, replaced by the retaken one.
        self.payloads.retain(|&(i, _)| i < iter);
        self.payloads.push((iter, Arc::new(state())));
        true
    }

    /// The iteration execution resumes from after a failure: one past the
    /// last restartable checkpoint (or 0 when none was taken). In async
    /// mode this is the *local* view; [`Checkpointer::restart`] replaces
    /// it with the job-wide agreement.
    pub fn restart_iteration(&self) -> u32 {
        self.restart_watermark().map_or(0, |i| i + 1)
    }

    /// The checkpoint this rank would restart from, by mode (and by
    /// planted bug): coordinated → last synchronous write; async → last
    /// drain durable at the crash cutoff; buggy async → last snapshot,
    /// drained or not.
    fn restart_watermark(&self) -> Option<u32> {
        match self.mode {
            CheckpointMode::Coordinated => self.last_saved_iter,
            CheckpointMode::Async => match self.bug {
                Some(RecoveryBug::RestartUndrained) => self.drains.latest_snapshot(),
                None => self.drains.drained_through(self.crash_cutoff()),
            },
        }
    }

    /// Durability cutoff: state of the disks at the instant the handled
    /// crash happened (everything later never made it).
    fn crash_cutoff(&self) -> SimTime {
        self.last_crash_time.unwrap_or(SimTime(u64::MAX))
    }

    /// Model a restart: a job-relaunch stall, agreement on the restart
    /// point (async mode: MIN-allreduce over per-rank drained
    /// watermarks — drain completion times differ across ranks),
    /// re-reading state from scratch, and a barrier. Execution resumes
    /// from the returned iteration.
    pub fn restart(&mut self, rank: &mut MpiRank, relaunch_stall: SimDuration) -> u32 {
        rank.ctx().advance(relaunch_stall);
        let resume = match self.mode {
            CheckpointMode::Coordinated => self.restart_iteration(),
            CheckpointMode::Async => {
                let local = f64::from(self.restart_iteration());
                rank.allreduce(ReduceOp::Min, &[local])[0] as u32
            }
        };
        if resume > 0 {
            rank.ctx().disk_read(self.state_bytes_per_rank);
        }
        rank.barrier();
        self.last_saved_iter = resume.checked_sub(1);
        resume
    }

    /// [`Checkpointer::restart`] plus the [`FaultEvent::Recovery`]
    /// record, for callers that *semantically re-execute* the lost
    /// iterations themselves (the campaign workloads do: they need the
    /// recomputed state, not just the recomputed cost). `failed_iter` is
    /// the iteration the failure interrupted; the caller loops from the
    /// returned iteration.
    pub fn restart_semantic(
        &mut self,
        rank: &mut MpiRank,
        relaunch_stall: SimDuration,
        failed_iter: u32,
    ) -> u32 {
        let resume = self.restart(rank, relaunch_stall);
        rank.ctx().record_fault(FaultEvent::Recovery {
            runtime: "mpi",
            action: "checkpoint_restart",
            detail: u64::from(failed_iter.saturating_sub(resume)),
        });
        resume
    }

    /// Recover the payload stored for the checkpoint `resume` points one
    /// past (`None` for `resume == 0`: initial state). Models the read
    /// of the checkpoint file: in async mode a payload whose drain was
    /// still in flight at the crash is a torn file and yields `None`
    /// even though the snapshot existed in (lost) memory — exactly the
    /// read a [`RecoveryBug::RestartUndrained`] restart attempts.
    pub fn restore_payload<P: Clone + Send + Sync + 'static>(&self, resume: u32) -> Option<P> {
        let iter = resume.checked_sub(1)?;
        let durable = match self.mode {
            CheckpointMode::Coordinated => true,
            CheckpointMode::Async => self
                .drains
                .drain_of(iter)
                .is_some_and(|d| d.done <= self.crash_cutoff()),
        };
        if !durable {
            return None;
        }
        self.payloads
            .iter()
            .find(|&&(i, _)| i == iter)
            .and_then(|(_, p)| p.downcast_ref::<P>().cloned())
    }

    /// Like [`Checkpointer::restart`], but also charges the *replay* of the
    /// iterations lost since the last checkpoint: each re-executed
    /// iteration pays its compute plus the same collective traffic
    /// (an `allreduce` of `allreduce_elems` doubles and the checkpoint
    /// barriers) that the lost progress had already paid once. Earlier
    /// versions only charged the state reload, undercounting MPI's
    /// recovery cost versus Spark's lineage recomputation. Returns
    /// `failed_iter`: replay is charged internally, so the caller resumes
    /// *after* the failed iteration's lost work without looping back.
    pub fn restart_replayed(
        &mut self,
        rank: &mut MpiRank,
        relaunch_stall: SimDuration,
        failed_iter: u32,
        work_per_iter: Work,
        allreduce_elems: usize,
    ) -> u32 {
        let resume = self.restart(rank, relaunch_stall);
        rank.ctx().record_fault(FaultEvent::Recovery {
            runtime: "mpi",
            action: "checkpoint_restart",
            detail: u64::from(failed_iter.saturating_sub(resume)),
        });
        let zeros = vec![0.0f64; allreduce_elems];
        for iter in resume..failed_iter {
            rank.ctx().compute(work_per_iter, 1.0);
            if allreduce_elems > 0 {
                rank.allreduce(ReduceOp::Sum, &zeros);
            }
            self.after_iteration(rank, iter);
        }
        failed_iter
    }

    /// Partial restart, for algorithms whose structure allows it (e.g.
    /// data-parallel iterations whose collective re-serves surviving
    /// ranks' contributions): only ranks homed on crashed nodes reload
    /// state and replay lost compute; surviving ranks keep their state,
    /// join the replayed collectives (their halves of the traffic), and
    /// skip the recompute. No checkpoints are retaken during the replay
    /// window — survivors' scratch copies are still valid, and the next
    /// naturally-fired interval re-checkpoints everyone. Returns
    /// `failed_iter`, like [`Checkpointer::restart_replayed`].
    pub fn restart_partial_replayed(
        &mut self,
        rank: &mut MpiRank,
        relaunch_stall: SimDuration,
        failed_iter: u32,
        work_per_iter: Work,
        allreduce_elems: usize,
    ) -> u32 {
        let my_node = rank.placement().node_of_rank(rank.rank());
        let affected = {
            let ctx = rank.ctx();
            match ctx.fault_plan() {
                Some(plan) => plan
                    .crash_time(my_node)
                    .is_some_and(|t| t <= self.crash_cutoff()),
                None => false,
            }
        };
        rank.ctx().advance(relaunch_stall);
        let resume = match self.mode {
            CheckpointMode::Coordinated => self.restart_iteration(),
            CheckpointMode::Async => {
                let local = f64::from(self.restart_iteration());
                rank.allreduce(ReduceOp::Min, &[local])[0] as u32
            }
        };
        if affected {
            if resume > 0 {
                rank.ctx().disk_read(self.state_bytes_per_rank);
            }
            rank.ctx().record_fault(FaultEvent::Recovery {
                runtime: "mpi",
                action: "partial_restart",
                detail: u64::from(failed_iter.saturating_sub(resume)),
            });
        }
        rank.barrier();
        self.last_saved_iter = resume.checked_sub(1);
        let zeros = vec![0.0f64; allreduce_elems];
        for _iter in resume..failed_iter {
            if affected {
                rank.ctx().compute(work_per_iter, 1.0);
            }
            if allreduce_elems > 0 {
                rank.allreduce(ReduceOp::Sum, &zeros);
            }
        }
        failed_iter
    }

    /// Number of checkpoints taken so far.
    pub fn taken(&self) -> u32 {
        self.checkpoints_taken
    }

    /// This rank's drain ledger (async mode; coordinated drains complete
    /// synchronously). The campaign generator reads the windows off an
    /// oracle run to aim crashes inside them.
    pub fn drain_windows(&self) -> Vec<(SimTime, SimTime)> {
        self.drains.windows()
    }

    /// Virtual time of `rank` (convenience for instrumentation).
    pub fn now(rank: &MpiRank) -> SimTime {
        rank.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::mpirun;
    use hpcbd_cluster::Placement;
    use hpcbd_simnet::SimDuration;

    #[test]
    fn checkpoints_fire_on_interval() {
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(3, 1 << 20);
            let mut fired = vec![];
            for iter in 0..10 {
                if ck.after_iteration(rank, iter) {
                    fired.push(iter);
                }
            }
            (fired, ck.taken(), ck.restart_iteration())
        });
        for (fired, taken, resume) in out.results {
            assert_eq!(fired, vec![2, 5, 8]);
            assert_eq!(taken, 3);
            assert_eq!(resume, 9);
        }
    }

    #[test]
    fn zero_interval_never_checkpoints() {
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(0, 1 << 20);
            for iter in 0..5 {
                assert!(!ck.after_iteration(rank, iter));
            }
            ck.restart_iteration()
        });
        assert_eq!(out.results, vec![0, 0]);
    }

    #[test]
    fn checkpointing_costs_time() {
        let with = mpirun(Placement::new(2, 1), |rank| {
            let mut ck = Checkpointer::new(1, 256 << 20);
            for iter in 0..4 {
                ck.after_iteration(rank, iter);
            }
        })
        .elapsed();
        let without = mpirun(Placement::new(2, 1), |rank| {
            let mut ck = Checkpointer::new(0, 256 << 20);
            for iter in 0..4 {
                ck.after_iteration(rank, iter);
            }
        })
        .elapsed();
        assert!(
            with > without,
            "checkpointing must cost time: with={with} without={without}"
        );
    }

    #[test]
    #[should_panic(expected = "MPI_Abort")]
    fn abort_policy_panics_on_planned_failure() {
        use hpcbd_simnet::{FaultPlan, NodeId, Work};
        let _ = crate::launch::mpirun_faulty(
            Placement::new(2, 2),
            FaultPlan::new(1).crash_node(NodeId(1), SimTime(1_000)),
            |rank| {
                let mut ck = Checkpointer::new(2, 1 << 20);
                for iter in 0..10 {
                    rank.ctx().compute(Work::new(1_000_000.0, 0.0), 1.0);
                    rank.allreduce(ReduceOp::Sum, &[f64::from(iter)]);
                    ck.after_iteration(rank, iter);
                    ck.poll_plan_failure(rank, FaultPolicy::Abort);
                }
            },
        );
    }

    #[test]
    fn abort_is_a_structured_abort() {
        use hpcbd_simnet::{FaultPlan, NodeId, StructuredAbort, Work};
        let caught = std::panic::catch_unwind(|| {
            let _ = crate::launch::mpirun_faulty(
                Placement::new(2, 2),
                FaultPlan::new(1).crash_node(NodeId(1), SimTime(1_000)),
                |rank| {
                    let mut ck = Checkpointer::new(2, 1 << 20);
                    for iter in 0..10 {
                        rank.ctx().compute(Work::new(1_000_000.0, 0.0), 1.0);
                        rank.allreduce(ReduceOp::Sum, &[f64::from(iter)]);
                        ck.after_iteration(rank, iter);
                        ck.poll_plan_failure(rank, FaultPolicy::Abort);
                    }
                },
            );
        })
        .expect_err("MPI_Abort must unwind");
        let sa = StructuredAbort::from_panic(caught.as_ref() as &(dyn std::any::Any + Send))
            .expect("MPI_Abort must surface as a structured abort");
        assert_eq!(sa.runtime, "mpi");
        assert!(sa.reason.contains("MPI_Abort"), "reason: {}", sa.reason);
    }

    #[test]
    fn poll_is_free_without_a_plan() {
        let out = mpirun(Placement::new(2, 1), |rank| {
            let mut ck = Checkpointer::new(2, 1 << 10);
            let mut detected = 0u32;
            for iter in 0..4 {
                ck.after_iteration(rank, iter);
                if ck.poll_plan_failure(rank, FaultPolicy::Abort) {
                    detected += 1;
                }
            }
            detected
        });
        assert_eq!(out.results, vec![0, 0]);
    }

    #[test]
    fn planned_failure_restart_resumes_and_completes() {
        use hpcbd_simnet::{FaultPlan, NodeId, Work};
        let out = crate::launch::mpirun_faulty(
            Placement::new(2, 2),
            FaultPlan::new(9).crash_node(NodeId(1), SimTime(1_000)),
            |rank| {
                let mut ck = Checkpointer::new(2, 1 << 20);
                let work = Work::new(2_000_000.0, 0.0);
                let stall = SimDuration::from_secs(1);
                let mut sum = 0.0;
                let mut restarts = 0u32;
                let mut iter = 0u32;
                while iter < 8 {
                    rank.ctx().compute(work, 1.0);
                    sum = rank.allreduce(ReduceOp::Sum, &[f64::from(iter)])[0];
                    ck.after_iteration(rank, iter);
                    if ck.poll_plan_failure(
                        rank,
                        FaultPolicy::Restart {
                            relaunch_stall: stall,
                        },
                    ) {
                        restarts += 1;
                        iter = ck.restart_replayed(rank, stall, iter, work, 1);
                        continue;
                    }
                    iter += 1;
                }
                (sum, restarts)
            },
        );
        for (sum, restarts) in out.results {
            assert_eq!(restarts, 1, "exactly one planned failure handled");
            assert_eq!(sum, 7.0 * 4.0, "final allreduce correct after recovery");
        }
    }

    #[test]
    fn restart_replayed_charges_collective_replay() {
        use hpcbd_simnet::Work;
        fn run(replay: bool) -> SimTime {
            mpirun(Placement::new(2, 2), move |rank| {
                let mut ck = Checkpointer::new(4, 1 << 20);
                let work = Work::new(5_000_000.0, 0.0);
                for iter in 0..11 {
                    rank.ctx().compute(work, 1.0);
                    rank.allreduce(ReduceOp::Sum, &[f64::from(iter)]);
                    ck.after_iteration(rank, iter);
                }
                // The job fails at iteration 11 — three iterations past
                // the checkpoint taken after iteration 7.
                if replay {
                    ck.restart_replayed(rank, SimDuration::from_secs(2), 11, work, 1)
                } else {
                    ck.restart(rank, SimDuration::from_secs(2))
                }
            })
            .elapsed()
        }
        let plain = run(false);
        let replayed = run(true);
        assert!(
            replayed > plain,
            "replaying lost iterations (compute + collectives + retaken \
             checkpoints) must cost more than reloading state alone: \
             {replayed} vs {plain}"
        );
    }

    #[test]
    fn restart_resumes_after_last_checkpoint() {
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(2, 1 << 10);
            for iter in 0..5 {
                ck.after_iteration(rank, iter);
            }
            // Fail at iteration 5; restart.
            ck.restart(rank, SimDuration::from_secs(2))
        });
        assert_eq!(out.results, vec![4, 4]);
    }

    #[test]
    fn failure_on_a_checkpoint_iteration_replays_nothing() {
        use hpcbd_simnet::Work;
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(2, 1 << 10);
            let work = Work::new(1_000_000.0, 0.0);
            for iter in 0..4 {
                rank.ctx().compute(work, 1.0);
                ck.after_iteration(rank, iter);
            }
            // The checkpoint fired after iteration 3; the failure hits
            // on iteration 3 itself. Replay range is 4..3 = empty.
            let ret = ck.restart_replayed(rank, SimDuration::from_secs(1), 3, work, 0);
            (ret, ck.restart_iteration())
        });
        for (ret, resume) in out.results {
            assert_eq!(ret, 3, "restart_replayed returns the failed iteration");
            assert_eq!(resume, 4, "resume point is one past the checkpoint");
        }
    }

    #[test]
    fn failure_before_the_first_checkpoint_replays_from_zero() {
        use hpcbd_simnet::Work;
        let out = mpirun(Placement::new(1, 2), |rank| {
            let mut ck = Checkpointer::new(5, 1 << 10);
            let work = Work::new(1_000_000.0, 0.0);
            for iter in 0..3 {
                rank.ctx().compute(work, 1.0);
                assert!(!ck.after_iteration(rank, iter));
            }
            // No checkpoint exists; the failure at iteration 2 rewinds
            // the whole job to iteration 0 and replays everything.
            let before = rank.now();
            let ret = ck.restart_replayed(rank, SimDuration::from_secs(1), 2, work, 0);
            (ret, ck.restart_iteration(), rank.now() > before)
        });
        for (ret, resume, advanced) in out.results {
            assert_eq!(ret, 2);
            assert_eq!(resume, 0, "no checkpoint: resume from scratch");
            assert!(advanced, "stall + replay must cost time");
        }
    }

    #[test]
    fn async_steady_state_is_cheaper_than_coordinated() {
        use hpcbd_simnet::Work;
        fn run(mode: CheckpointMode) -> SimTime {
            mpirun(Placement::new(2, 2), move |rank| {
                let mut ck = Checkpointer::new(2, 64 << 20).with_mode(mode);
                let work = Work::new(5.0e7, 0.0);
                for iter in 0..12 {
                    rank.ctx().compute(work, 1.0);
                    rank.allreduce(ReduceOp::Sum, &[f64::from(iter)]);
                    ck.after_iteration(rank, iter);
                }
                ck.taken()
            })
            .elapsed()
        }
        let coordinated = run(CheckpointMode::Coordinated);
        let asynchronous = run(CheckpointMode::Async);
        assert!(
            asynchronous < coordinated,
            "background drains must beat stop-the-world writes at equal \
             interval: async={asynchronous} coordinated={coordinated}"
        );
    }

    /// The canonical async semantic-recovery workload: iterative state
    /// evolution with payload capture and full re-execution from the
    /// restored checkpoint. Used by the three async restart tests.
    fn async_sum_job(
        plan: Option<hpcbd_simnet::FaultPlan>,
        bug: Option<RecoveryBug>,
        iters: u32,
    ) -> Vec<f64> {
        use hpcbd_simnet::Work;
        let body = move |rank: &mut MpiRank| {
            let mut ck = Checkpointer::new(2, 64 << 20).with_mode(CheckpointMode::Async);
            if let Some(b) = bug {
                ck = ck.with_planted_bug(b);
            }
            let work = Work::new(5.0e7, 0.0);
            let stall = SimDuration::from_secs(1);
            let mut state = 0.0f64;
            let mut iter = 0u32;
            while iter < iters {
                rank.ctx().compute(work, 1.0);
                let v = rank.allreduce(ReduceOp::Sum, &[f64::from(iter) + 1.0])[0];
                state += v * f64::from(iter + 1);
                ck.after_iteration_with(rank, iter, || state);
                if ck.poll_plan_failure(
                    rank,
                    FaultPolicy::Restart {
                        relaunch_stall: stall,
                    },
                ) {
                    let resume = ck.restart_semantic(rank, stall, iter);
                    state = ck.restore_payload::<f64>(resume).unwrap_or(0.0);
                    iter = resume;
                    continue;
                }
                iter += 1;
            }
            state
        };
        match plan {
            Some(p) => crate::launch::mpirun_faulty(Placement::new(2, 2), p, body).results,
            None => mpirun(Placement::new(2, 2), body).results,
        }
    }

    /// Drain windows of the oracle (fault-free) run of `async_sum_job`.
    fn oracle_drain_windows(iters: u32) -> Vec<(SimTime, SimTime)> {
        use hpcbd_simnet::Work;
        let out = mpirun(Placement::new(2, 2), move |rank| {
            let mut ck = Checkpointer::new(2, 64 << 20).with_mode(CheckpointMode::Async);
            let work = Work::new(5.0e7, 0.0);
            let mut state = 0.0f64;
            for iter in 0..iters {
                rank.ctx().compute(work, 1.0);
                let v = rank.allreduce(ReduceOp::Sum, &[f64::from(iter) + 1.0])[0];
                state += v * f64::from(iter + 1);
                ck.after_iteration_with(rank, iter, || state);
            }
            ck.drain_windows()
        });
        out.results.into_iter().flatten().collect()
    }

    /// A crash time inside a mid-run drain window of the oracle: late
    /// enough that checkpoints exist, early enough that later
    /// iterations still poll and detect it.
    fn mid_drain_crash_time(iters: u32) -> SimTime {
        let windows = oracle_drain_windows(iters);
        assert!(windows.len() >= 4, "async job must drain repeatedly");
        let (issue, done) = windows[windows.len() / 2];
        SimTime(issue.nanos() + (done.nanos() - issue.nanos()) / 2)
    }

    #[test]
    fn async_restart_from_drained_checkpoint_preserves_the_result() {
        use hpcbd_simnet::{FaultPlan, NodeId};
        let oracle = async_sum_job(None, None, 10);
        // Aim the crash inside a drain window so the snapshot being
        // drained is torn and restart must fall back one checkpoint.
        let plan = FaultPlan::new(3).crash_node(NodeId(1), mid_drain_crash_time(10));
        let recovered = async_sum_job(Some(plan), None, 10);
        assert_eq!(
            recovered, oracle,
            "correct async recovery must be digest-equal to the fault-free run"
        );
    }

    #[test]
    fn planted_undrained_restart_bug_corrupts_the_result() {
        use hpcbd_simnet::{FaultPlan, NodeId};
        let oracle = async_sum_job(None, None, 10);
        let plan = FaultPlan::new(3).crash_node(NodeId(1), mid_drain_crash_time(10));
        let corrupted = async_sum_job(Some(plan), Some(RecoveryBug::RestartUndrained), 10);
        assert_ne!(
            corrupted, oracle,
            "trusting the snapshot counter over the drain watermark must \
             silently corrupt the result — this is the bug the campaign \
             explorer exists to catch"
        );
    }

    #[test]
    fn async_restart_before_any_drain_resumes_from_zero() {
        use hpcbd_simnet::{FaultPlan, NodeId};
        let oracle = async_sum_job(None, None, 6);
        // Crash before the first checkpoint interval completes.
        let plan = FaultPlan::new(3).crash_node(NodeId(1), SimTime(1_000));
        let recovered = async_sum_job(Some(plan), None, 6);
        assert_eq!(recovered, oracle, "full re-execution from iteration 0");
    }

    #[test]
    fn partial_restart_replays_less_aggregate_work() {
        use hpcbd_simnet::{FaultPlan, NodeId, Work};
        // Aggregate compute time across ranks: the crashed node's ranks
        // set the makespan either way (their replay is the critical
        // path), but partial restart spares the survivors' recompute —
        // the resource-usage win the MPI/GPI-2 study reports.
        // Probe the fault-free run's iteration boundaries so the crash
        // deterministically lands between polls 3 and 4 — one iteration
        // past the interval-3 checkpoint, leaving a non-empty replay.
        fn iteration_ends() -> Vec<SimTime> {
            let out = mpirun(Placement::new(4, 2), |rank| {
                let mut ck = Checkpointer::new(3, 32 << 20);
                let work = Work::new(2.0e8, 0.0);
                let mut ends = Vec::new();
                for iter in 0..9 {
                    rank.ctx().compute(work, 1.0);
                    rank.allreduce(ReduceOp::Sum, &[f64::from(iter)]);
                    ck.after_iteration(rank, iter);
                    ends.push(rank.now());
                }
                ends
            });
            out.results.into_iter().next().unwrap()
        }
        fn run(partial: bool) -> (SimDuration, u32) {
            let ends = iteration_ends();
            let crash = SimTime((ends[3].nanos() + ends[4].nanos()) / 2);
            let plan = FaultPlan::new(5).crash_node(NodeId(1), crash);
            let out = crate::launch::mpirun_faulty(Placement::new(4, 2), plan, move |rank| {
                let mut ck = Checkpointer::new(3, 32 << 20);
                let work = Work::new(2.0e8, 0.0);
                let stall = SimDuration::from_secs(1);
                let mut replayed = 0u32;
                let mut iter = 0u32;
                while iter < 9 {
                    rank.ctx().compute(work, 1.0);
                    rank.allreduce(ReduceOp::Sum, &[f64::from(iter)]);
                    ck.after_iteration(rank, iter);
                    if ck.poll_plan_failure(
                        rank,
                        FaultPolicy::Restart {
                            relaunch_stall: stall,
                        },
                    ) {
                        let resume = ck.restart_iteration();
                        replayed = iter - resume;
                        iter = if partial {
                            ck.restart_partial_replayed(rank, stall, iter, work, 1)
                        } else {
                            ck.restart_replayed(rank, stall, iter, work, 1)
                        };
                        continue;
                    }
                    iter += 1;
                }
                replayed
            });
            let total: SimDuration = out
                .report
                .procs
                .iter()
                .map(|p| p.stats.compute_time)
                .fold(SimDuration::ZERO, |a, b| a + b);
            (total, out.results[0])
        }
        let (full, replayed_full) = run(false);
        let (partial, replayed_partial) = run(true);
        assert_eq!(replayed_full, replayed_partial);
        assert!(
            replayed_full > 0,
            "the scenario must actually lose iterations"
        );
        assert!(
            partial < full,
            "replaying only crashed-node ranks must spend less aggregate \
             compute than whole-job replay: partial={partial} full={full}"
        );
    }
}
