//! Sub-communicators (`MPI_Comm_split`).
//!
//! A [`SubComm`] is a subset of MPI_COMM_WORLD with its own rank
//! numbering, supporting the collectives iterative multi-group codes
//! need (barrier, broadcast, allreduce). Communication goes through the
//! world communicator's point-to-point layer with a tag space disjoint
//! from both user tags and world collectives.

use std::sync::Arc;

use hpcbd_simnet::Tag;

use crate::datatype::{MpiScalar, ReduceOp};
use crate::rank::MpiRank;

/// Tag space for sub-communicator collectives.
const SUBCOMM_TAG_BASE: Tag = 1 << 39;

/// A communicator over a subset of world ranks.
pub struct SubComm {
    /// World ranks in this communicator, sorted by (key, world rank) as
    /// `MPI_Comm_split` orders them.
    members: Arc<Vec<u32>>,
    /// This process's rank within the sub-communicator.
    my_rank: u32,
    /// Distinguishes collectives of different splits/colors.
    comm_id: u64,
    seq: u64,
}

impl MpiRank<'_> {
    /// `MPI_Comm_split(color, key)`: collective over MPI_COMM_WORLD.
    /// Ranks passing the same `color` land in the same sub-communicator,
    /// ordered by `(key, world rank)`. Returns `None` for
    /// `color == None` (MPI_UNDEFINED).
    pub fn comm_split(&mut self, color: Option<u32>, key: u32) -> Option<SubComm> {
        // Exchange (color, key) with everyone via allgather.
        let my_color = color.map(|c| c as i64).unwrap_or(-1);
        let pairs = self.allgather(&[my_color, key as i64]);
        let color = color?;
        let mut members: Vec<(u32, u32)> = pairs
            .chunks_exact(2)
            .enumerate()
            .filter(|(_, ck)| ck[0] == color as i64)
            .map(|(r, ck)| (ck[1] as u32, r as u32))
            .collect();
        members.sort();
        let members: Vec<u32> = members.into_iter().map(|(_, r)| r).collect();
        let my_world = self.rank();
        let my_rank = members
            .iter()
            .position(|r| *r == my_world)
            .expect("self in own color group") as u32;
        Some(SubComm {
            members: Arc::new(members),
            my_rank,
            comm_id: color as u64 + 1,
            seq: 0,
        })
    }
}

impl SubComm {
    /// Rank within this communicator.
    pub fn rank(&self) -> u32 {
        self.my_rank
    }

    /// Size of this communicator.
    pub fn size(&self) -> u32 {
        self.members.len() as u32
    }

    /// World rank of a member.
    pub fn world_rank(&self, r: u32) -> u32 {
        self.members[r as usize]
    }

    fn next_tag(&mut self) -> Tag {
        self.seq += 1;
        SUBCOMM_TAG_BASE + self.comm_id * (1 << 20) + self.seq
    }

    /// Barrier over the sub-communicator (dissemination).
    pub fn barrier(&mut self, world: &mut MpiRank) {
        let tag = self.next_tag();
        let n = self.size();
        if n <= 1 {
            return;
        }
        let me = self.my_rank;
        let mut step = 1u32;
        while step < n {
            let dst = self.world_rank((me + step) % n);
            let src = self.world_rank((me + n - step) % n);
            world.send_arc::<u8>(dst, tag, Arc::new(Vec::new()));
            let _ = world.recv::<u8>(Some(src), tag);
            step <<= 1;
        }
    }

    /// Broadcast from sub-communicator `root` (binomial).
    pub fn bcast<T: MpiScalar>(
        &mut self,
        world: &mut MpiRank,
        root: u32,
        data: Option<Arc<Vec<T>>>,
    ) -> Arc<Vec<T>> {
        let tag = self.next_tag();
        let n = self.size();
        let me = self.my_rank;
        let vrank = (me + n - root) % n;
        let mut buf = if me == root {
            Some(data.expect("root supplies the buffer"))
        } else {
            None
        };
        if vrank != 0 {
            let parent_v = vrank & (vrank - 1);
            let parent = self.world_rank((parent_v + root) % n);
            buf = Some(world.recv::<T>(Some(parent), tag).0);
        }
        let buf = buf.expect("buffer after receive");
        let mut bit = 1u32;
        while bit < n && vrank & bit == 0 {
            let child_v = vrank | bit;
            if child_v < n {
                let child = self.world_rank((child_v + root) % n);
                world.send_arc(child, tag, buf.clone());
            }
            bit <<= 1;
        }
        buf
    }

    /// Allreduce over the sub-communicator (recursive doubling with
    /// straggler folding, like the world-communicator version).
    pub fn allreduce<T: MpiScalar>(
        &mut self,
        world: &mut MpiRank,
        op: ReduceOp,
        data: &[T],
    ) -> Vec<T> {
        let tag = self.next_tag();
        let n = self.size();
        let me = self.my_rank;
        let mut acc = data.to_vec();
        if n == 1 {
            return acc;
        }
        let pof2 = if n.is_power_of_two() {
            n
        } else {
            1 << (31 - n.leading_zeros())
        };
        let rem = n - pof2;
        if me >= pof2 {
            world.send_arc(self.world_rank(me - pof2), tag, Arc::new(acc.clone()));
            let (v, _) = world.recv::<T>(Some(self.world_rank(me - pof2)), tag + 2);
            self.seq += 2; // keep tag counters aligned with participants
            return (*v).clone();
        }
        if me < rem {
            let (v, _) = world.recv::<T>(Some(self.world_rank(me + pof2)), tag);
            op.combine_into(&mut acc, &v);
        }
        let mut mask = 1u32;
        while mask < pof2 {
            let peer = self.world_rank(me ^ mask);
            world.send_arc(peer, tag + 1, Arc::new(acc.clone()));
            let (v, _) = world.recv::<T>(Some(peer), tag + 1);
            op.combine_into(&mut acc, &v);
            mask <<= 1;
        }
        if me < rem {
            world.send_arc(self.world_rank(me + pof2), tag + 2, Arc::new(acc.clone()));
        }
        self.seq += 2; // reserve the sub-phase tags
        acc
    }
}

#[cfg(test)]
mod tests {
    use crate::launch::mpirun;
    use crate::ReduceOp;
    use hpcbd_cluster::Placement;
    use std::sync::Arc;

    #[test]
    fn split_partitions_world_by_color() {
        let out = mpirun(Placement::new(2, 3), |rank| {
            let color = rank.rank() % 2;
            let sub = rank.comm_split(Some(color), rank.rank()).unwrap();
            (color, sub.rank(), sub.size())
        });
        // 6 world ranks -> evens {0,2,4}, odds {1,3,5}.
        assert_eq!(out.results[0], (0, 0, 3));
        assert_eq!(out.results[1], (1, 0, 3));
        assert_eq!(out.results[2], (0, 1, 3));
        assert_eq!(out.results[4], (0, 2, 3));
        assert_eq!(out.results[5], (1, 2, 3));
    }

    #[test]
    fn undefined_color_yields_none() {
        let out = mpirun(Placement::new(1, 4), |rank| {
            let color = if rank.rank() < 2 { Some(0) } else { None };
            rank.comm_split(color, 0).is_some()
        });
        assert_eq!(out.results, vec![true, true, false, false]);
    }

    #[test]
    fn key_reorders_subranks() {
        let out = mpirun(Placement::new(1, 4), |rank| {
            // Reverse order within one color.
            let key = 100 - rank.rank();
            let sub = rank.comm_split(Some(0), key).unwrap();
            sub.rank()
        });
        assert_eq!(out.results, vec![3, 2, 1, 0]);
    }

    #[test]
    fn subcomm_collectives_stay_within_group() {
        let out = mpirun(Placement::new(2, 3), |rank| {
            let color = rank.rank() % 2;
            let mut sub = rank.comm_split(Some(color), rank.rank()).unwrap();
            sub.barrier(rank);
            let sum = sub.allreduce(rank, ReduceOp::Sum, &[rank.rank() as f64]);
            let b = sub.bcast(
                rank,
                0,
                if sub.rank() == 0 {
                    Some(Arc::new(vec![color as f64 * 100.0]))
                } else {
                    None
                },
            );
            sub.barrier(rank);
            (sum[0], b[0])
        });
        // Evens sum 0+2+4=6, odds 1+3+5=9; broadcasts carry the color.
        for (r, (sum, b)) in out.results.iter().enumerate() {
            if r % 2 == 0 {
                assert_eq!((*sum, *b), (6.0, 0.0));
            } else {
                assert_eq!((*sum, *b), (9.0, 100.0));
            }
        }
    }

    #[test]
    fn non_power_of_two_subcomm_allreduce() {
        let out = mpirun(Placement::new(1, 5), |rank| {
            let mut sub = rank.comm_split(Some(0), rank.rank()).unwrap();
            sub.allreduce(rank, ReduceOp::Max, &[rank.rank() as f64])
        });
        for r in out.results {
            assert_eq!(r, vec![4.0]);
        }
    }
}
