//! Nonblocking point-to-point operations (`MPI_Isend` / `MPI_Irecv` /
//! `MPI_Wait[all]`).
//!
//! The engine's sends are eager (the sender is released after its
//! endpoint overhead; the transfer proceeds in virtual time on the NIC),
//! so `isend` completes immediately and its request is trivially ready.
//! `irecv` registers a match that [`MpiRank::wait`] resolves — receive
//! latency is hidden until the wait, which is precisely the overlap
//! MPI programs use nonblocking receives for.

use std::sync::Arc;

use hpcbd_simnet::Tag;

use crate::datatype::MpiScalar;
use crate::rank::MpiRank;

/// A pending nonblocking operation.
pub enum MpiRequest<T> {
    /// An eager send: already complete.
    Send,
    /// A posted receive, resolved at `wait`.
    Recv {
        /// Expected source (`None` = any).
        src: Option<u32>,
        /// Expected tag.
        tag: Tag,
    },
    /// Already waited on.
    Done(std::marker::PhantomData<fn() -> T>),
}

impl MpiRank<'_> {
    /// `MPI_Isend`: start a send; the returned request is complete (eager
    /// protocol — buffering is the transport model's concern).
    pub fn isend<T: MpiScalar>(&mut self, dst: u32, tag: Tag, data: &[T]) -> MpiRequest<T> {
        self.send(dst, tag, data);
        MpiRequest::Send
    }

    /// `MPI_Irecv`: post a receive to be completed by [`MpiRank::wait`].
    pub fn irecv<T: MpiScalar>(&mut self, src: Option<u32>, tag: Tag) -> MpiRequest<T> {
        MpiRequest::Recv { src, tag }
    }

    /// `MPI_Wait`: complete one request, returning received data for
    /// receives (`None` for sends).
    pub fn wait<T: MpiScalar>(&mut self, req: MpiRequest<T>) -> Option<Arc<Vec<T>>> {
        match req {
            MpiRequest::Send | MpiRequest::Done(_) => None,
            MpiRequest::Recv { src, tag } => Some(self.recv::<T>(src, tag).0),
        }
    }

    /// `MPI_Waitall`: complete a batch, returning receive payloads in
    /// request order.
    pub fn waitall<T: MpiScalar>(&mut self, reqs: Vec<MpiRequest<T>>) -> Vec<Option<Arc<Vec<T>>>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::mpirun;
    use hpcbd_cluster::Placement;

    #[test]
    fn isend_irecv_waitall_roundtrip() {
        let out = mpirun(Placement::new(2, 2), |rank| {
            let me = rank.rank();
            let n = rank.size();
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;
            // Post the receive first, then send — the classic
            // deadlock-free halo exchange.
            let r: MpiRequest<u64> = rank.irecv(Some(left), 9);
            let s = rank.isend(right, 9, &[me as u64 * 7]);
            let got = rank.waitall(vec![r, s]);
            got[0].as_ref().unwrap()[0]
        });
        assert_eq!(out.results, vec![21, 0, 7, 14]);
    }

    #[test]
    fn overlap_hides_receive_latency() {
        // With irecv, the receiver computes while the message is in
        // flight; its finish time is max(compute, transfer) rather than
        // the sum.
        let out = mpirun(Placement::new(2, 1), |rank| {
            if rank.rank() == 0 {
                // Large message: several ms of wire time.
                rank.send(1, 1, &vec![1.0f64; 4 << 20]);
                0
            } else {
                let req: MpiRequest<f64> = rank.irecv(Some(0), 1);
                // ~5ms of local compute, overlapped with the transfer.
                rank.ctx().compute(hpcbd_simnet::Work::flops(15.0e6), 1.0);
                let v = rank.wait(req).unwrap();
                assert_eq!(v.len(), 4 << 20);
                rank.now().nanos()
            }
        });
        let finish = out.results[1];
        // 32 MB over 6.4 GB/s is ~5.2ms; compute is ~5ms. Overlapped,
        // the receiver should finish well under the 10.2ms sum.
        assert!(
            finish < 9_000_000,
            "receiver finished at {finish}ns — no overlap?"
        );
    }
}
