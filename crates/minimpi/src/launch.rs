//! `mpirun` — SPMD job launch.

use std::sync::Arc;

use hpcbd_cluster::{ClusterSpec, Placement, RankMap};
use hpcbd_simnet::{Execution, FaultPlan, Pid, ProcCtx, Sim, SimReport, SimTime};

use crate::rank::MpiRank;

/// Everything an MPI job run produced: per-rank results in rank order,
/// plus the simulation report (per-process stats and the makespan, which
/// is the job's execution time).
pub struct MpiOutput<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Engine report.
    pub report: SimReport,
}

impl<T> MpiOutput<T> {
    /// The job's execution time (virtual time of the slowest rank).
    pub fn elapsed(&self) -> SimTime {
        self.report.makespan()
    }
}

/// A builder for embedding MPI ranks into an existing simulation that
/// also hosts non-MPI processes (HDFS daemons, measurement probes, ...).
pub struct MpiJob {
    placement: Placement,
    pids: Vec<Pid>,
}

impl MpiJob {
    /// Spawn one process per rank of `placement` into `sim`, each running
    /// `f`. Rank r is placed on node `placement.node_of_rank(r)`.
    pub fn spawn<T, F>(sim: &mut Sim, placement: Placement, f: F) -> MpiJob
    where
        T: Send + 'static,
        F: Fn(&mut MpiRank) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut pids = Vec::with_capacity(placement.total() as usize);
        // The rank map is published to every rank closure after all of
        // them are registered; processes only start at `sim.run()`, so
        // the OnceLock is always populated before any rank reads it.
        let shared_map: Arc<std::sync::OnceLock<Arc<RankMap>>> =
            Arc::new(std::sync::OnceLock::new());
        let win_store = crate::rma::WinStore::new();
        for (rank, node) in placement.iter() {
            let f = f.clone();
            let shared_map = shared_map.clone();
            let win_store = win_store.clone();
            let pid = sim.spawn(node, format!("mpi-rank{rank}"), move |ctx: &mut ProcCtx| {
                let map = shared_map
                    .get()
                    .expect("rank map published before run")
                    .clone();
                let mut rank_handle =
                    MpiRank::new(ctx, rank, map, placement).with_win_store(win_store);
                f(&mut rank_handle)
            });
            pids.push(pid);
        }
        shared_map
            .set(Arc::new(RankMap::from_pids(pids.clone())))
            .expect("rank map set once");
        MpiJob { placement, pids }
    }

    /// Pids of the spawned ranks, in rank order.
    pub fn pids(&self) -> &[Pid] {
        &self.pids
    }

    /// The job placement.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Collect per-rank results from a finished simulation.
    pub fn results<T: 'static>(&self, report: &mut SimReport) -> Vec<T> {
        self.pids.iter().map(|p| report.result::<T>(*p)).collect()
    }
}

/// Launch an SPMD MPI job on a dedicated Comet allocation sized to the
/// placement, run it to completion, and return per-rank results.
///
/// This is the `mpirun -np N --map-by ppr:P:node` of the study.
pub fn mpirun<T, F>(placement: Placement, f: F) -> MpiOutput<T>
where
    T: Send + 'static,
    F: Fn(&mut MpiRank) -> T + Send + Sync + 'static,
{
    mpirun_on(&ClusterSpec::comet(placement.nodes), placement, f)
}

/// [`mpirun`] with an explicit engine execution mode (the virtual-time
/// results are bit-identical across modes; see
/// [`hpcbd_simnet::parallel`]).
pub fn mpirun_with<T, F>(placement: Placement, exec: Execution, f: F) -> MpiOutput<T>
where
    T: Send + 'static,
    F: Fn(&mut MpiRank) -> T + Send + Sync + 'static,
{
    mpirun_impl(
        &ClusterSpec::comet(placement.nodes),
        placement,
        Some(exec),
        None,
        f,
    )
}

/// [`mpirun`] with an explicit cluster description.
pub fn mpirun_on<T, F>(cluster: &ClusterSpec, placement: Placement, f: F) -> MpiOutput<T>
where
    T: Send + 'static,
    F: Fn(&mut MpiRank) -> T + Send + Sync + 'static,
{
    mpirun_impl(cluster, placement, None, None, f)
}

/// [`mpirun`] under a deterministic [`FaultPlan`]: the plan is installed
/// before any rank starts, so node crashes, stragglers, link faults, and
/// message drops hit the job exactly as scheduled. Pair with
/// [`crate::Checkpointer::poll_plan_failure`] inside `f` for recovery —
/// without it, a crashed rank simply never reaches its next collective
/// and the job hangs or aborts, which is plain MPI's actual behavior.
pub fn mpirun_faulty<T, F>(placement: Placement, plan: FaultPlan, f: F) -> MpiOutput<T>
where
    T: Send + 'static,
    F: Fn(&mut MpiRank) -> T + Send + Sync + 'static,
{
    mpirun_impl(
        &ClusterSpec::comet(placement.nodes),
        placement,
        None,
        Some(plan),
        f,
    )
}

fn mpirun_impl<T, F>(
    cluster: &ClusterSpec,
    placement: Placement,
    exec: Option<Execution>,
    faults: Option<FaultPlan>,
    f: F,
) -> MpiOutput<T>
where
    T: Send + 'static,
    F: Fn(&mut MpiRank) -> T + Send + Sync + 'static,
{
    assert!(
        placement.nodes <= cluster.nodes,
        "placement needs {} nodes, cluster has {}",
        placement.nodes,
        cluster.nodes
    );
    let mut sim = Sim::new(cluster.topology());
    if let Some(exec) = exec {
        sim.set_execution(exec);
    }
    if let Some(plan) = faults {
        sim.set_fault_plan(plan);
    }
    let job = MpiJob::spawn(&mut sim, placement, f);
    let mut report = sim.run();
    let results = job.results::<T>(&mut report);
    MpiOutput { results, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_correct_rank_and_size() {
        let out = mpirun(Placement::new(2, 3), |rank| (rank.rank(), rank.size()));
        assert_eq!(out.results.len(), 6);
        for (i, (r, s)) in out.results.iter().enumerate() {
            assert_eq!(*r as usize, i);
            assert_eq!(*s, 6);
        }
    }

    #[test]
    fn elapsed_is_positive_once_ranks_communicate() {
        let out = mpirun(Placement::new(2, 1), |rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, &[42u64]);
            } else {
                rank.recv::<u64>(Some(0), 1);
            }
        });
        assert!(out.elapsed() > SimTime::ZERO);
    }

    #[test]
    fn placement_accessible_from_rank() {
        let out = mpirun(Placement::new(2, 2), |rank| {
            rank.placement().node_of_rank(rank.rank()).0
        });
        assert_eq!(out.results, vec![0, 0, 1, 1]);
    }
}
