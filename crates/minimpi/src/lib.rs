//! `hpcbd-minimpi` — an MPI-like message-passing runtime on `simnet`.
//!
//! Reproduces the MPI surface the paper's benchmarks use (Sec. II-B):
//! SPMD launch (`mpirun`), two-sided point-to-point communication, tuned
//! collectives (binomial broadcast/reduce, recursive-doubling and ring
//! all-reduce, dissemination barrier), and MPI parallel I/O — including
//! the `int`-typed element-count limitation of `MPI_File_read_at_all`
//! that the paper shows forcing more than 40 processes for an 80 GB file.
//!
//! All communication uses the native RDMA transport (MPI on Comet runs
//! verbs for every message), with shared memory for intra-node peers.
//!
//! # Example
//!
//! ```
//! use hpcbd_minimpi::{mpirun, ReduceOp};
//! use hpcbd_cluster::Placement;
//!
//! let out = mpirun(Placement::new(2, 2), |rank| {
//!     let v = vec![rank.rank() as f64; 4];
//!     rank.allreduce(ReduceOp::Sum, &v)
//! });
//! // 0+1+2+3 = 6 in every slot on every rank.
//! assert!(out.results.iter().all(|r| r == &vec![6.0; 4]));
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod collectives;
pub mod datatype;
pub mod io;
pub mod launch;
pub mod nonblocking;
pub mod rank;
pub mod rma;
pub mod scheduled;
pub mod subcomm;

pub use checkpoint::{CheckpointMode, Checkpointer, FaultPolicy, RecoveryBug};
pub use datatype::{MpiScalar, ReduceOp};
pub use io::{MpiFile, MpiIoError};
pub use launch::{mpirun, mpirun_faulty, mpirun_on, mpirun_with, MpiJob, MpiOutput};
pub use nonblocking::MpiRequest;
pub use rank::MpiRank;
pub use rma::{MpiWin, WinStore};
pub use scheduled::{scheduled_answers, scheduled_pagerank};
pub use subcomm::SubComm;
