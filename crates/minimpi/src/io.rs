//! MPI parallel I/O (MPI-2 style), including its famous limitation.
//!
//! `MPI_File_read_at_all` takes the element count as a C `int`. The paper
//! (Sec. V-C) shows this forces the 80 GB AnswersCount input to be split
//! across **more than 40 processes** — each process's chunk must fit in
//! 2 GB — and calls it "a fundamental issue with the parallel I/Os of MPI
//! that cannot be overcome by using MPI-3 features". [`MpiFile::read_at_all`]
//! reproduces the exact failure mode: a count above `i32::MAX` returns
//! [`MpiIoError::CountOverflow`] instead of reading.
//!
//! Files are opened from the node-local scratch mount (the paper's MPI
//! configuration replicates the input to every node's SSD).

use std::any::Any;
use std::sync::Arc;

use hpcbd_simnet::Mount;

use crate::rank::MpiRank;

/// Errors surfaced by the parallel I/O routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiIoError {
    /// The per-process element count exceeds `i32::MAX` — the `int`-typed
    /// count parameter of the MPI standard cannot express it.
    CountOverflow {
        /// The requested per-process byte count.
        requested: u64,
    },
    /// The file does not exist on this rank's scratch filesystem.
    FileNotFound(String),
}

impl std::fmt::Display for MpiIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiIoError::CountOverflow { requested } => write!(
                f,
                "MPI_File_read_at_all count {requested} exceeds MAX_INT ({})",
                i32::MAX
            ),
            MpiIoError::FileNotFound(p) => write!(f, "no such file: {p}"),
        }
    }
}

impl std::error::Error for MpiIoError {}

/// An open parallel file handle.
#[derive(Clone)]
pub struct MpiFile {
    path: String,
    logical_size: u64,
    data: Option<Arc<dyn Any + Send + Sync>>,
}

impl MpiFile {
    /// Logical file size in bytes.
    #[inline]
    pub fn size(&self) -> u64 {
        self.logical_size
    }

    /// Path this handle was opened from.
    #[inline]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Content handle attached to the file (a `hpcbd-workloads` dataset
    /// sample, for benchmarks that parse what they read).
    pub fn data_as<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.data.clone().and_then(|d| d.downcast::<T>().ok())
    }

    /// `MPI_File_read_at_all`: collectively read `count` bytes at `offset`
    /// on each rank. Charges the local SSD for the bytes actually read
    /// (reads past EOF truncate). Returns the number of bytes read.
    ///
    /// Fails with [`MpiIoError::CountOverflow`] when `count` cannot be
    /// represented as a C `int`.
    pub fn read_at_all(
        &self,
        rank: &mut MpiRank,
        offset: u64,
        count: u64,
    ) -> Result<u64, MpiIoError> {
        if count > i32::MAX as u64 {
            return Err(MpiIoError::CountOverflow { requested: count });
        }
        let end = (offset + count).min(self.logical_size);
        let actual = end.saturating_sub(offset.min(self.logical_size));
        if actual > 0 {
            rank.ctx().disk_read(actual);
        }
        Ok(actual)
    }

    /// Read the whole file collectively with one even contiguous chunk per
    /// rank — the access pattern of the paper's MPI benchmarks. Returns
    /// this rank's `(offset, len)`.
    ///
    /// Propagates the `int`-count limitation: with too few ranks for a
    /// large file (e.g. 40 or fewer for 80 GB) the per-rank chunk
    /// overflows and the read fails, exactly as on Comet.
    pub fn read_chunked_all(&self, rank: &mut MpiRank) -> Result<(u64, u64), MpiIoError> {
        let n = rank.size() as u64;
        let me = rank.rank() as u64;
        let chunk = self.logical_size.div_ceil(n);
        let offset = (me * chunk).min(self.logical_size);
        let len = chunk.min(self.logical_size - offset);
        let read = self.read_at_all(rank, offset, len.max(1).min(chunk))?;
        debug_assert!(read <= chunk);
        Ok((offset, read))
    }
}

impl MpiRank<'_> {
    /// `MPI_File_open` on the node-local scratch copy of `path`
    /// (collective: includes a barrier, like opening with a communicator).
    pub fn file_open_all(&mut self, path: &str) -> Result<MpiFile, MpiIoError> {
        self.barrier();
        let mount = Mount::Scratch(self.ctx.node());
        let entry = self
            .ctx
            .fs()
            .stat(mount, path)
            .ok_or_else(|| MpiIoError::FileNotFound(path.to_string()))?;
        // Open cost: one metadata request.
        let overhead = self
            .ctx
            .world()
            .topology
            .node(self.ctx.node())
            .spec
            .disk
            .request_overhead;
        self.ctx.advance(overhead);
        Ok(MpiFile {
            path: path.to_string(),
            logical_size: entry.logical_size,
            data: entry.data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use hpcbd_cluster::Placement;
    use hpcbd_simnet::NodeId;

    fn with_file<T, F>(placement: Placement, size: u64, f: F) -> crate::MpiOutput<T>
    where
        T: Send + 'static,
        F: Fn(&mut MpiRank) -> T + Send + Sync + 'static,
    {
        let cluster = hpcbd_cluster::ClusterSpec::comet(placement.nodes);
        let mut sim = hpcbd_simnet::Sim::new(cluster.topology());
        sim.world().fs.replicate_to_scratch(
            (0..placement.nodes).map(NodeId),
            "input.dat",
            size,
            None,
        );
        let job = crate::launch::MpiJob::spawn(&mut sim, placement, f);
        let mut report = sim.run();
        let results = job.results::<T>(&mut report);
        crate::MpiOutput { results, report }
    }

    #[test]
    fn open_and_chunked_read_covers_file() {
        let size = 1u64 << 20;
        let out = with_file(Placement::new(2, 2), size, move |rank| {
            let f = rank.file_open_all("input.dat").unwrap();
            assert_eq!(f.size(), size);
            f.read_chunked_all(rank).unwrap()
        });
        let mut total = 0;
        let mut offsets: Vec<u64> = vec![];
        for (off, len) in out.results {
            offsets.push(off);
            total += len;
        }
        assert_eq!(total, size);
        offsets.sort();
        assert_eq!(offsets[0], 0);
    }

    #[test]
    fn count_overflow_reproduces_the_2gb_limit() {
        // One rank reading an 8 GB file must fail: 8 GB > MAX_INT.
        let size = 8u64 << 30;
        let out = with_file(Placement::new(1, 1), size, move |rank| {
            let f = rank.file_open_all("input.dat").unwrap();
            f.read_chunked_all(rank)
        });
        assert_eq!(
            out.results[0],
            Err(MpiIoError::CountOverflow { requested: 8 << 30 })
        );
    }

    #[test]
    fn eighty_gb_needs_more_than_40_ranks() {
        // The paper's exact observation: ceil(80e9 / nranks) must be
        // <= MAX_INT, which first holds at 41 ranks.
        let gb80 = 80u64 << 30;
        assert!(gb80.div_ceil(40) > i32::MAX as u64);
        assert!(gb80.div_ceil(41) <= i32::MAX as u64);
    }

    #[test]
    fn missing_file_is_reported() {
        let out = with_file(Placement::new(1, 2), 10, |rank| {
            rank.file_open_all("not-there").err().map(|e| e.to_string())
        });
        assert!(out.results[0].as_ref().unwrap().contains("no such file"));
    }

    #[test]
    fn read_past_eof_truncates() {
        let out = with_file(Placement::new(1, 1), 100, |rank| {
            let f = rank.file_open_all("input.dat").unwrap();
            f.read_at_all(rank, 80, 50).unwrap()
        });
        assert_eq!(out.results[0], 20);
    }
}
