//! Scheduler adapter: compile the MPI benchmarks into gang-scheduled
//! multi-tenant [`hpcbd_sched::JobSpec`]s.
//!
//! MPI jobs are *gangs*: every rank must be running before the first
//! collective, so the scheduler allocates all slots atomically and marks
//! them non-preemptable (killing one rank would strand its peers inside
//! a collective). Ranks message each other through the wave's private
//! [`hpcbd_simnet::JobChannel`] tag namespace over the same RDMA-verbs
//! transport the standalone `MpiJob` launcher uses, so network costs —
//! and contention with co-scheduled tenants — are charged identically.

use std::sync::Arc;

use hpcbd_sched::{JobSpec, Segment, TaskSpec, Wave};
use hpcbd_simnet::{MatchSpec, Payload, Transport, Work};
use hpcbd_workloads::stackexchange::RECORD_BYTES;

/// Native per-record scan cost (mirrors the Fig. 4 driver's C loop).
fn scan_work() -> Work {
    Work::new(60.0, 1600.0)
}

/// Native per-logical-edge PageRank cost (mirrors the Fig. 6 driver).
fn edge_work() -> Work {
    Work::new(12.0, 48.0)
}

/// One ring step: pass `bytes` to the right neighbour, receive from the
/// left, on the wave's private channel lane `lane`.
fn ring_step(
    ctx: &mut hpcbd_simnet::ProcCtx,
    env: &hpcbd_simnet::LaunchEnv,
    lane: u32,
    bytes: u64,
) {
    let p = env.gang_size();
    let me = env.index as usize;
    let right = env.peer((me + 1) % p);
    let left = env.peer((me + p - 1) % p);
    let tr = Transport::rdma_verbs();
    ctx.send(right, env.tag(lane), bytes, Payload::Empty, &tr);
    let _ = ctx.recv(MatchSpec::src_tag(left, env.tag(lane)));
}

/// The MPI AnswersCount job: `ranks` ranks scan `bytes` of the dump with
/// parallel I/O over per-node replicas, then allreduce the two counters.
pub fn scheduled_answers(
    queue: &'static str,
    tenant: &'static str,
    bytes: u64,
    ranks: u32,
) -> JobSpec {
    let body: Segment = Arc::new(move |ctx, env| {
        let p = env.gang_size() as u64;
        let share = bytes / p;
        // MPI-IO chunked read of this rank's share from scratch.
        ctx.disk_read(share);
        let records = (share / RECORD_BYTES) as f64;
        ctx.compute(scan_work().scaled(records), 1.0);
        // Ring allreduce of the (q, a) counters: 2(p-1) tiny steps.
        for step in 0..2 * (p as u32 - 1) {
            ring_step(ctx, env, step, 16);
        }
    });
    JobSpec {
        template: "mpi/answers",
        queue,
        tenant,
        waves: vec![Wave {
            tasks: vec![
                TaskSpec {
                    segments: vec![body],
                    preferred: None,
                    preemptable: false,
                };
                ranks as usize
            ],
            gang: true,
        }],
    }
}

/// The MPI PageRank job: `ranks` ranks iterate over a graph with
/// `edges` logical edges and `vertices` logical vertices; each iteration
/// is local edge work followed by a ring exchange of the partitioned
/// contribution vector (the cost shape of the driver's `alltoall`).
pub fn scheduled_pagerank(
    queue: &'static str,
    tenant: &'static str,
    vertices: u64,
    edges: u64,
    iters: u32,
    ranks: u32,
) -> JobSpec {
    let body: Segment = Arc::new(move |ctx, env| {
        let p = env.gang_size() as u64;
        let local_edges = edges / p;
        // Contribution pairs are [dest, share] f64s: 16 bytes each, one
        // per local edge, spread over p-1 ring steps.
        let exchange = (local_edges * 16) / p.max(1);
        for iter in 0..iters {
            ctx.compute(edge_work().scaled(local_edges as f64), 1.0);
            for step in 0..(p as u32 - 1) {
                ring_step(ctx, env, iter * p as u32 + step, exchange);
            }
            // Apply received contributions to the owned partition.
            ctx.compute(Work::new(4.0, 24.0).scaled((vertices / p) as f64), 1.0);
        }
    });
    JobSpec {
        template: "mpi/pagerank",
        queue,
        tenant,
        waves: vec![Wave {
            tasks: vec![
                TaskSpec {
                    segments: vec![body],
                    preferred: None,
                    preemptable: false,
                };
                ranks as usize
            ],
            gang: true,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_are_gangs_of_pinned_ranks() {
        for job in [
            scheduled_answers("batch", "hpc", 1 << 30, 8),
            scheduled_pagerank("batch", "hpc", 1 << 20, 8 << 20, 3, 8),
        ] {
            assert_eq!(job.waves.len(), 1);
            assert!(job.waves[0].gang);
            assert_eq!(job.waves[0].tasks.len(), 8);
            assert!(job.waves[0].tasks.iter().all(|t| !t.preemptable));
        }
    }
}
