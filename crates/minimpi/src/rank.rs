//! The per-rank handle: MPI_COMM_WORLD as seen by one process.

use std::sync::Arc;

use hpcbd_cluster::{Placement, RankMap};
use hpcbd_simnet::{MatchSpec, Payload, Pid, ProcCtx, Tag, Transport};

use crate::datatype::MpiScalar;

/// Tag space reserved for collective operations; user tags must stay
/// below this.
pub(crate) const COLL_TAG_BASE: Tag = 1 << 40;

/// The world communicator handle held by each rank inside an
/// [`crate::mpirun`] closure. Wraps the simnet process context with
/// rank/size addressing and typed two-sided messaging; the collectives
/// in [`crate::collectives`] and the I/O routines in [`crate::io`]
/// build on these primitives.
pub struct MpiRank<'a> {
    pub(crate) ctx: &'a mut ProcCtx,
    pub(crate) rank: u32,
    pub(crate) size: u32,
    pub(crate) map: Arc<RankMap>,
    pub(crate) placement: Placement,
    pub(crate) rdma: Transport,
    pub(crate) shm: Transport,
    pub(crate) coll_seq: u64,
    pub(crate) bytes_scale: f64,
    pub(crate) win_seq: u64,
    pub(crate) win_store: std::sync::Arc<crate::rma::WinStore>,
}

impl<'a> MpiRank<'a> {
    /// Build a rank handle. Used by [`crate::mpirun`]; exposed so that
    /// experiments can embed MPI ranks in simulations that also host
    /// other processes (e.g. an HDFS cluster).
    pub fn new(
        ctx: &'a mut ProcCtx,
        rank: u32,
        map: Arc<RankMap>,
        placement: Placement,
    ) -> MpiRank<'a> {
        let size = map.len() as u32;
        MpiRank {
            ctx,
            rank,
            size,
            map,
            placement,
            rdma: Transport::rdma_verbs(),
            shm: Transport::shared_memory(),
            coll_seq: 0,
            bytes_scale: 1.0,
            win_seq: 0,
            win_store: crate::rma::WinStore::new(),
        }
    }

    /// Install the job-wide RMA window store (used by the launcher; a
    /// rank constructed without one gets a private store, making windows
    /// inaccessible across ranks).
    pub fn with_win_store(mut self, store: std::sync::Arc<crate::rma::WinStore>) -> Self {
        self.win_store = store;
        self
    }

    /// Next collective window id (SPMD-aligned, like collective tags).
    pub(crate) fn next_win_id(&mut self) -> u64 {
        let id = self.win_seq;
        self.win_seq += 1;
        id
    }

    /// The job-wide window store.
    pub(crate) fn win_store(&self) -> std::sync::Arc<crate::rma::WinStore> {
        self.win_store.clone()
    }

    /// The RDMA transport used for one-sided operations.
    pub(crate) fn rdma_transport(&self) -> Transport {
        self.rdma
    }

    /// Set the logical-bytes multiplier applied to every message this
    /// rank sends. Benchmarks operating on a sampled dataset (see
    /// DESIGN.md §2) set this to the sample's content scale factor so
    /// wire costs reflect the full-size problem while payloads stay
    /// sample-sized. Purely a costing knob; data is unchanged.
    pub fn set_bytes_scale(&mut self, scale: f64) {
        assert!(scale >= 1.0, "bytes scale must be >= 1");
        self.bytes_scale = scale;
    }

    /// This process's rank in MPI_COMM_WORLD.
    #[inline]
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of ranks in MPI_COMM_WORLD.
    #[inline]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The placement this job was launched with.
    #[inline]
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Engine pid of a rank.
    #[inline]
    pub fn pid_of(&self, rank: u32) -> Pid {
        self.map.pid(rank)
    }

    /// Access the underlying simulation context (compute costing, disk
    /// I/O, virtual clock).
    #[inline]
    pub fn ctx(&mut self) -> &mut ProcCtx {
        self.ctx
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> hpcbd_simnet::SimTime {
        self.ctx.now()
    }

    /// Open a named phase span on this rank's trace (no-op when tracing
    /// is off; see [`ProcCtx::span_open`]).
    #[inline]
    pub fn span_open(&mut self, label: impl Into<Arc<str>>) {
        self.ctx.span_open(label);
    }

    /// Open a phase span with a lazily formatted label (the closure runs
    /// only when tracing is on).
    #[inline]
    pub fn span_open_with(&mut self, label: impl FnOnce() -> String) {
        self.ctx.span_open_with(label);
    }

    /// Close the innermost open phase span.
    #[inline]
    pub fn span_close(&mut self) {
        self.ctx.span_close();
    }

    /// Pick the transport for talking to `dst` (verbs across nodes,
    /// shared memory within one).
    #[inline]
    pub(crate) fn transport_to(&self, dst: u32) -> &Transport {
        if self.placement.node_of_rank(dst) == self.placement.node_of_rank(self.rank) {
            &self.shm
        } else {
            &self.rdma
        }
    }

    /// Blocking typed send (eager protocol, like MPI_Send of a contiguous
    /// buffer).
    pub fn send<T: MpiScalar>(&mut self, dst: u32, tag: Tag, data: &[T]) {
        assert!(tag < COLL_TAG_BASE, "user tags must be < 2^40");
        self.send_arc(dst, tag, Arc::new(data.to_vec()));
    }

    /// Send an `Arc`'d buffer without copying (useful when the same buffer
    /// goes to many peers).
    pub fn send_arc<T: MpiScalar>(&mut self, dst: u32, tag: Tag, data: Arc<Vec<T>>) {
        let bytes = (data.len() as f64 * T::BYTES as f64 * self.bytes_scale) as u64;
        let tr = *self.transport_to(dst);
        let pid = self.map.pid(dst);
        self.ctx.send(pid, tag, bytes, Payload::Value(data), &tr);
    }

    /// Blocking typed receive (MPI_Recv). `src = None` is MPI_ANY_SOURCE.
    /// Returns the payload and the sending rank.
    pub fn recv<T: MpiScalar>(&mut self, src: Option<u32>, tag: Tag) -> (Arc<Vec<T>>, u32) {
        let spec = MatchSpec {
            src: src.map(|r| self.map.pid(r)),
            tag: Some(tag),
        };
        let msg = self.ctx.recv(spec);
        let src_rank = self
            .map
            .rank_of(msg.src)
            .expect("message from a non-MPI process");
        (msg.expect_value::<Vec<T>>(), src_rank)
    }

    /// Combined send+receive (MPI_Sendrecv): posts the send, then blocks
    /// on the receive.
    pub fn sendrecv<T: MpiScalar>(
        &mut self,
        dst: u32,
        send_tag: Tag,
        data: &[T],
        src: u32,
        recv_tag: Tag,
    ) -> Arc<Vec<T>> {
        self.send(dst, send_tag, data);
        self.recv::<T>(Some(src), recv_tag).0
    }

    /// Next collective tag. Each rank advances its own counter; SPMD
    /// execution keeps the counters aligned, exactly like the sequence
    /// numbers real MPI implementations use for collective matching.
    pub(crate) fn next_coll_tag(&mut self) -> Tag {
        self.coll_seq += 1;
        COLL_TAG_BASE + self.coll_seq
    }

    /// Reserve `k` additional collective tags (multi-phase collectives use
    /// `tag..tag+k`; every rank must skip the same amount to stay aligned).
    pub(crate) fn skip_coll_tags(&mut self, k: u64) {
        self.coll_seq += k;
    }
}

#[cfg(test)]
mod tests {
    use crate::launch::mpirun;
    use hpcbd_cluster::Placement;

    #[test]
    fn point_to_point_roundtrip() {
        let out = mpirun(Placement::new(2, 1), |rank| {
            if rank.rank() == 0 {
                rank.send(1, 5, &[1.5f64, 2.5]);
                let (v, src) = rank.recv::<f64>(Some(1), 6);
                assert_eq!(src, 1);
                v.iter().sum::<f64>()
            } else {
                let (v, src) = rank.recv::<f64>(Some(0), 5);
                assert_eq!(src, 0);
                rank.send(0, 6, &[v.iter().sum::<f64>() * 2.0]);
                0.0
            }
        });
        assert_eq!(out.results[0], 8.0);
    }

    #[test]
    fn any_source_receive() {
        let out = mpirun(Placement::new(1, 3), |rank| {
            if rank.rank() == 0 {
                let mut got = vec![];
                for _ in 0..2 {
                    let (v, src) = rank.recv::<u32>(None, 1);
                    got.push((src, v[0]));
                }
                got.sort();
                got
            } else {
                rank.send(0, 1, &[rank.rank() * 10]);
                vec![]
            }
        });
        assert_eq!(out.results[0], vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn sendrecv_exchanges_between_neighbours() {
        let out = mpirun(Placement::new(2, 2), |rank| {
            let me = rank.rank();
            let n = rank.size();
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;
            let got = rank.sendrecv(right, 7, &[me as i64], left, 7);
            got[0]
        });
        assert_eq!(out.results, vec![3, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "user tags")]
    fn reserved_tags_rejected() {
        mpirun(Placement::new(1, 2), |rank| {
            if rank.rank() == 0 {
                rank.send(1, 1 << 41, &[0u8]);
            } else {
                rank.recv::<u8>(Some(0), 1 << 41);
            }
        });
    }
}
