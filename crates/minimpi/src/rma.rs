//! MPI-3 one-sided communication (RMA windows).
//!
//! Sec. II-B of the paper traces the RMA interface from its limited
//! MPI-2 form to the MPI-3 overhaul that gives "better support for
//! one-sided and global-address-space models": memory exposed through
//! **windows**, remotely accessed with put/get/accumulate, synchronized
//! with fences. This module implements that active-target model. The
//! target rank's CPU is never involved in a transfer (RDMA offload),
//! exactly like the `minshmem` runtime — the two share the engine's
//! one-sided cost path.

use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::datatype::{MpiScalar, ReduceOp};
use crate::rank::MpiRank;

/// Storage behind every window of one MPI job: per-rank buffers keyed by
/// window id. Shared by all rank closures through an `Arc`.
#[derive(Default)]
pub struct WinStore {
    wins: RwLock<HashMap<(u64, u32), Box<dyn Any + Send + Sync>>>,
}

impl WinStore {
    /// Fresh store (one per job).
    pub fn new() -> Arc<WinStore> {
        Arc::new(WinStore::default())
    }

    fn install<T: MpiScalar>(&self, win: u64, rank: u32, buf: Vec<T>) {
        self.wins.write().insert((win, rank), Box::new(buf));
    }

    fn with<T: MpiScalar, R>(&self, win: u64, rank: u32, f: impl FnOnce(&Vec<T>) -> R) -> R {
        let g = self.wins.read();
        let cell = g
            .get(&(win, rank))
            .unwrap_or_else(|| panic!("window {win} not exposed on rank {rank}"));
        f(cell.downcast_ref::<Vec<T>>().expect("window type mismatch"))
    }

    fn with_mut<T: MpiScalar, R>(
        &self,
        win: u64,
        rank: u32,
        f: impl FnOnce(&mut Vec<T>) -> R,
    ) -> R {
        let mut g = self.wins.write();
        let cell = g
            .get_mut(&(win, rank))
            .unwrap_or_else(|| panic!("window {win} not exposed on rank {rank}"));
        f(cell.downcast_mut::<Vec<T>>().expect("window type mismatch"))
    }

    fn free(&self, win: u64, rank: u32) {
        self.wins.write().remove(&(win, rank));
    }
}

/// A window handle (`MPI_Win`): this rank's exposed buffer plus the
/// ability to access every other rank's.
pub struct MpiWin<T> {
    id: u64,
    len: usize,
    _t: PhantomData<fn() -> T>,
}

impl<T: MpiScalar> MpiWin<T> {
    /// Elements each rank exposes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length windows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl MpiRank<'_> {
    /// `MPI_Win_create` (collective): expose `local` for one-sided access
    /// by every rank. All ranks must pass buffers of the same length.
    pub fn win_create<T: MpiScalar>(&mut self, local: Vec<T>) -> MpiWin<T> {
        let id = self.next_win_id();
        let len = local.len();
        self.win_store().install(id, self.rank(), local);
        self.barrier();
        MpiWin {
            id,
            len,
            _t: PhantomData,
        }
    }

    /// `MPI_Win_free` (collective).
    pub fn win_free<T: MpiScalar>(&mut self, win: MpiWin<T>) {
        self.win_store().free(win.id, self.rank());
        self.barrier();
    }

    /// `MPI_Win_fence`: separate RMA epochs (a barrier; all outstanding
    /// one-sided transfers in this engine complete synchronously, so the
    /// fence's remaining job is the synchronization).
    pub fn win_fence<T: MpiScalar>(&mut self, _win: &MpiWin<T>) {
        self.barrier();
    }

    /// `MPI_Put`: one-sided write into `target`'s window at `offset`.
    pub fn win_put<T: MpiScalar>(
        &mut self,
        win: &MpiWin<T>,
        target: u32,
        offset: usize,
        data: &[T],
    ) {
        let bytes = (data.len() as u64 * T::BYTES) as f64 * self.bytes_scale;
        let node = self.placement().node_of_rank(target);
        let tr = self.rdma_transport();
        let store = self.win_store();
        // Window mutation inside the transfer's commit window: remote
        // memory effects apply in virtual-time order in both execution
        // modes.
        self.ctx()
            .one_sided_transfer_with(node, bytes as u64, &tr, 1, || {
                store.with_mut(win.id, target, |buf: &mut Vec<T>| {
                    buf[offset..offset + data.len()].copy_from_slice(data);
                });
            });
    }

    /// `MPI_Get`: one-sided read from `target`'s window.
    pub fn win_get<T: MpiScalar>(
        &mut self,
        win: &MpiWin<T>,
        target: u32,
        offset: usize,
        len: usize,
    ) -> Vec<T> {
        let bytes = (len as u64 * T::BYTES) as f64 * self.bytes_scale;
        let node = self.placement().node_of_rank(target);
        let tr = self.rdma_transport();
        let store = self.win_store();
        self.ctx()
            .one_sided_transfer_with(node, bytes as u64, &tr, 2, || {
                store.with(win.id, target, |buf: &Vec<T>| {
                    buf[offset..offset + len].to_vec()
                })
            })
    }

    /// `MPI_Accumulate` with a predefined op: element-wise combine `data`
    /// into `target`'s window (atomic per element, like the standard
    /// requires for same-op accumulates).
    pub fn win_accumulate<T: MpiScalar>(
        &mut self,
        win: &MpiWin<T>,
        target: u32,
        offset: usize,
        op: ReduceOp,
        data: &[T],
    ) {
        let bytes = (data.len() as u64 * T::BYTES) as f64 * self.bytes_scale;
        let node = self.placement().node_of_rank(target);
        let tr = self.rdma_transport();
        let store = self.win_store();
        // Accumulate needs the round trip (fetch-op at the target HCA).
        self.ctx()
            .one_sided_transfer_with(node, bytes as u64, &tr, 2, || {
                store.with_mut(win.id, target, |buf: &mut Vec<T>| {
                    for (i, v) in data.iter().enumerate() {
                        buf[offset + i] = op.apply(buf[offset + i], *v);
                    }
                });
            });
    }

    /// Read this rank's own window contents (local load).
    pub fn win_local<T: MpiScalar>(&mut self, win: &MpiWin<T>) -> Vec<T> {
        let me = self.rank();
        self.win_store()
            .with(win.id, me, |buf: &Vec<T>| buf.clone())
    }
}

#[cfg(test)]
mod tests {
    use crate::launch::mpirun;
    use crate::ReduceOp;
    use hpcbd_cluster::Placement;

    #[test]
    fn put_fence_exposes_remote_writes() {
        let out = mpirun(Placement::new(2, 2), |rank| {
            let win = rank.win_create(vec![0u64; 4]);
            rank.win_fence(&win);
            // Everyone writes its id into slot `me` of rank 0's window.
            let me = rank.rank();
            rank.win_put(&win, 0, me as usize, &[me as u64 + 100]);
            rank.win_fence(&win);
            let local = rank.win_local(&win);
            rank.win_free(win);
            local
        });
        assert_eq!(out.results[0], vec![100, 101, 102, 103]);
        assert_eq!(out.results[1], vec![0, 0, 0, 0], "only rank 0 was written");
    }

    #[test]
    fn get_reads_remote_windows() {
        let out = mpirun(Placement::new(2, 1), |rank| {
            let me = rank.rank();
            let win = rank.win_create(vec![me as f64 * 10.0; 2]);
            rank.win_fence(&win);
            let other = 1 - me;
            let got = rank.win_get(&win, other, 0, 2);
            rank.win_fence(&win);
            rank.win_free(win);
            got
        });
        assert_eq!(out.results[0], vec![10.0, 10.0]);
        assert_eq!(out.results[1], vec![0.0, 0.0]);
    }

    #[test]
    fn accumulate_sums_contributions() {
        let out = mpirun(Placement::new(1, 4), |rank| {
            let win = rank.win_create(vec![0u64; 1]);
            rank.win_fence(&win);
            rank.win_accumulate(&win, 0, 0, ReduceOp::Sum, &[rank.rank() as u64 + 1]);
            rank.win_fence(&win);
            let v = rank.win_local(&win)[0];
            rank.win_free(win);
            v
        });
        assert_eq!(out.results[0], 1 + 2 + 3 + 4);
    }

    #[test]
    fn one_sided_does_not_involve_target_cpu() {
        let out = mpirun(Placement::new(2, 1), |rank| {
            let win = rank.win_create(vec![0u8; 1 << 20]);
            rank.win_fence(&win);
            if rank.rank() == 0 {
                let data = vec![7u8; 1 << 20];
                for _ in 0..8 {
                    rank.win_put(&win, 1, 0, &data);
                }
            }
            // Clock before the fence resynchronizes everyone: the target
            // must not have paid for the incoming puts.
            let t = rank.now().nanos();
            rank.win_fence(&win);
            rank.win_free(win);
            t
        });
        // Rank 1 paid only the fences; rank 0 paid 8 MiB of puts.
        assert!(out.results[1] < out.results[0]);
    }

    #[test]
    #[should_panic(expected = "not exposed")]
    fn access_after_free_panics() {
        mpirun(Placement::new(1, 2), |rank| {
            let win = rank.win_create(vec![0u32; 1]);
            rank.win_fence(&win);
            let id_probe = rank.rank() == 0;
            let w2 = rank.win_create(vec![0u32; 1]);
            rank.win_free(w2);
            if id_probe {
                // Window 1 was freed; accessing it must fail loudly.
                // (win handle consumed by free, so re-create the access
                // through a fresh window of the same id space.)
            }
            rank.win_put(&win, 0, 0, &[1]);
            rank.win_free(win);
            // Deliberate failure: put into a freed window id.
            let ghost = crate::rma::MpiWin::<u32> {
                id: 1,
                len: 1,
                _t: std::marker::PhantomData,
            };
            rank.win_put(&ghost, 0, 0, &[1]);
        });
    }
}
