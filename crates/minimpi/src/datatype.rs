//! MPI datatypes and predefined reduction operators.

/// A scalar element type usable in minimpi messages and reductions —
/// the moral equivalent of the predefined MPI datatypes.
pub trait MpiScalar: Copy + Send + Sync + PartialOrd + std::fmt::Debug + 'static {
    /// Size of one element on the wire, in bytes.
    const BYTES: u64;
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition.
    fn add(self, other: Self) -> Self;
    /// Multiplication.
    fn mul(self, other: Self) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty => $bytes:expr),* $(,)?) => {
        $(impl MpiScalar for $t {
            const BYTES: u64 = $bytes;
            #[inline] fn zero() -> Self { 0 as $t }
            #[inline] fn one() -> Self { 1 as $t }
            #[inline] fn add(self, other: Self) -> Self { self + other }
            #[inline] fn mul(self, other: Self) -> Self { self * other }
        })*
    };
}

impl_scalar! {
    f32 => 4, f64 => 8,
    i32 => 4, i64 => 8,
    u32 => 4, u64 => 8,
    u8 => 1,
}

/// Predefined reduction operators (MPI_SUM, MPI_PROD, MPI_MAX, MPI_MIN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// Combine two elements.
    #[inline]
    pub fn apply<T: MpiScalar>(self, a: T, b: T) -> T {
        match self {
            ReduceOp::Sum => a.add(b),
            ReduceOp::Prod => a.mul(b),
            ReduceOp::Max => {
                if a >= b {
                    a
                } else {
                    b
                }
            }
            ReduceOp::Min => {
                if a <= b {
                    a
                } else {
                    b
                }
            }
        }
    }

    /// Identity element for this operator.
    #[inline]
    pub fn identity<T: MpiScalar>(self) -> T {
        match self {
            ReduceOp::Sum => T::zero(),
            ReduceOp::Prod => T::one(),
            // Max/Min identities need bounds; fold from the first element
            // instead (see `combine_into`). Using zero here would be wrong,
            // so the collectives never call `identity` for Max/Min.
            ReduceOp::Max | ReduceOp::Min => {
                panic!("Max/Min reductions fold from the first operand")
            }
        }
    }

    /// Element-wise combine `src` into `acc` (equal lengths required).
    pub fn combine_into<T: MpiScalar>(self, acc: &mut [T], src: &[T]) {
        assert_eq!(
            acc.len(),
            src.len(),
            "reduction buffers must have equal lengths"
        );
        for (a, s) in acc.iter_mut().zip(src) {
            *a = self.apply(*a, *s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_apply_elementwise() {
        let mut acc = vec![1.0f64, 5.0, -2.0];
        ReduceOp::Sum.combine_into(&mut acc, &[2.0, -1.0, 2.0]);
        assert_eq!(acc, vec![3.0, 4.0, 0.0]);
        ReduceOp::Max.combine_into(&mut acc, &[0.0, 10.0, -1.0]);
        assert_eq!(acc, vec![3.0, 10.0, 0.0]);
        ReduceOp::Min.combine_into(&mut acc, &[5.0, 0.0, -3.0]);
        assert_eq!(acc, vec![3.0, 0.0, -3.0]);
        ReduceOp::Prod.combine_into(&mut acc, &[2.0, 2.0, 2.0]);
        assert_eq!(acc, vec![6.0, 0.0, -6.0]);
    }

    #[test]
    fn integer_ops() {
        assert_eq!(ReduceOp::Sum.apply(3u64, 4), 7);
        assert_eq!(ReduceOp::Prod.apply(3i32, -4), -12);
        assert_eq!(ReduceOp::Max.apply(3u32, 4), 4);
        assert_eq!(ReduceOp::Min.apply(3i64, 4), 3);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        let mut acc = vec![0i32; 2];
        ReduceOp::Sum.combine_into(&mut acc, &[1, 2, 3]);
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(<f32 as MpiScalar>::BYTES, 4);
        assert_eq!(<f64 as MpiScalar>::BYTES, 8);
        assert_eq!(<u8 as MpiScalar>::BYTES, 1);
    }
}
