//! `hpcbd-metrics` — source-code size and boilerplate analysis.
//!
//! Reproduces the methodology behind Table III of the paper
//! (Sec. VI-A): for each paradigm's implementation of a benchmark,
//! count (1) total lines of code and (2) the lines that are
//! *distribution boilerplate* — setup/teardown, communicator and
//! cluster plumbing, explicit data movement — as opposed to the
//! algorithm itself. The paper's observation is that the paradigm's API
//! style, more than the language, dictates both numbers; the analyzer
//! runs over this repository's own per-paradigm benchmark sources.

#![warn(missing_docs)]

/// Code-size metrics for one implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeStats {
    /// Non-blank, non-comment lines.
    pub total_loc: u32,
    /// Lines matched as distribution boilerplate.
    pub boilerplate_loc: u32,
}

impl CodeStats {
    /// Boilerplate share in percent (0 for empty files).
    pub fn boilerplate_pct(&self) -> f64 {
        if self.total_loc == 0 {
            0.0
        } else {
            100.0 * self.boilerplate_loc as f64 / self.total_loc as f64
        }
    }
}

/// What counts as boilerplate for one paradigm: any code line containing
/// one of these substrings is classified as distribution plumbing.
#[derive(Debug, Clone)]
pub struct BoilerplateSpec {
    /// Paradigm name for reporting.
    pub paradigm: &'static str,
    /// Substrings marking setup / communication / teardown lines.
    pub patterns: Vec<&'static str>,
}

impl BoilerplateSpec {
    /// MPI: communicator setup, explicit messaging and collectives,
    /// parallel I/O plumbing, placement.
    pub fn mpi() -> BoilerplateSpec {
        BoilerplateSpec {
            paradigm: "MPI",
            patterns: vec![
                "mpirun",
                "MpiJob",
                "Placement::",
                "barrier",
                ".send(",
                ".recv",
                "sendrecv",
                "allreduce",
                "bcast",
                "scatter",
                "gather",
                "alltoall",
                "file_open_all",
                "read_at_all",
                "read_chunked_all",
                "rank.rank()",
                "rank.size()",
                "pid_of",
                "Checkpointer",
            ],
        }
    }

    /// OpenMP: team/pool creation and schedule clauses (the pragmas);
    /// everything else is plain sequential code.
    pub fn openmp() -> BoilerplateSpec {
        BoilerplateSpec {
            paradigm: "OpenMP",
            patterns: vec![
                "OmpPool::new",
                "Schedule::",
                "num_threads",
                "critical",
                "OmpModel",
                "charge_region",
            ],
        }
    }

    /// OpenSHMEM: PE setup, symmetric allocation, one-sided ops.
    pub fn openshmem() -> BoilerplateSpec {
        BoilerplateSpec {
            paradigm: "OpenSHMEM",
            patterns: vec![
                "shmem_run",
                "ShmemJob",
                "Placement::",
                ".malloc",
                "barrier_all",
                ".put(",
                ".get(",
                "put_signal",
                "wait_signal",
                "sum_to_all",
                "broadcast",
                "collect(",
                "atomic_fetch_add",
                "pe.pe()",
                "pe.npes()",
            ],
        }
    }

    /// Spark: context/cluster setup and configuration; transformations
    /// are considered algorithm code (the paper credits Spark's API with
    /// making "the logical execution path match the actual code flow").
    pub fn spark() -> BoilerplateSpec {
        BoilerplateSpec {
            paradigm: "Spark",
            patterns: vec![
                "SparkCluster::",
                "SparkConfig",
                "with_hdfs",
                "hdfs_file",
                "scratch_file",
                ".run(",
                "persist(",
                "StorageLevel::",
                "executors_per_node",
            ],
        }
    }

    /// Hadoop: job configuration, input format registration, the
    /// mapper/reducer submission plumbing.
    pub fn hadoop() -> BoilerplateSpec {
        BoilerplateSpec {
            paradigm: "Hadoop",
            patterns: vec![
                "MrJobBuilder::",
                "JobConf",
                "HdfsConfig",
                ".conf(",
                ".hdfs(",
                ".combiner(",
                ".map_work(",
                ".reduce_work(",
                ".run(",
                "slots_per_node",
                "reduce_tasks",
                "InputFormat",
                "sample_records",
                "logical_scale",
                "record_work",
            ],
        }
    }
}

/// Whether a source line is code (not blank, not a pure comment).
fn is_code_line(line: &str) -> bool {
    let t = line.trim();
    !(t.is_empty() || t.starts_with("//") || t.starts_with("/*") || t.starts_with('*'))
}

/// Analyze one source text against a paradigm's boilerplate spec.
pub fn analyze_source(source: &str, spec: &BoilerplateSpec) -> CodeStats {
    let mut total = 0;
    let mut boiler = 0;
    for line in source.lines() {
        if !is_code_line(line) {
            continue;
        }
        total += 1;
        if spec.patterns.iter().any(|p| line.contains(p)) {
            boiler += 1;
        }
    }
    CodeStats {
        total_loc: total,
        boilerplate_loc: boiler,
    }
}

/// A `TABLE3-BEGIN` marker was found without its matching `TABLE3-END`.
///
/// Treated as a hard error rather than "region absent": silently
/// returning `None` here would make Table III drop a paradigm row
/// whenever a marker comment is truncated or mistyped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnterminatedRegion {
    /// Name of the region whose END marker is missing.
    pub region: String,
}

impl std::fmt::Display for UnterminatedRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TABLE3-BEGIN: {} has no matching TABLE3-END marker",
            self.region
        )
    }
}

impl std::error::Error for UnterminatedRegion {}

/// Analyze a delimited region of a larger file: the lines between
/// `// TABLE3-BEGIN: <name>` and `// TABLE3-END: <name>` markers, which
/// is how the per-paradigm benchmark implementations in `hpcbd-core`
/// mark the code Table III measures.
///
/// Returns `Ok(None)` when the region does not appear in `source` at
/// all, and [`UnterminatedRegion`] when a BEGIN marker is never closed.
pub fn analyze_region(
    source: &str,
    region: &str,
    spec: &BoilerplateSpec,
) -> Result<Option<CodeStats>, UnterminatedRegion> {
    let begin = format!("TABLE3-BEGIN: {region}");
    let end = format!("TABLE3-END: {region}");
    let mut inside = false;
    let mut body = String::new();
    for line in source.lines() {
        if line.contains(&begin) {
            inside = true;
            continue;
        }
        if line.contains(&end) {
            return Ok(Some(analyze_source(&body, spec)));
        }
        if inside {
            body.push_str(line);
            body.push('\n');
        }
    }
    if inside {
        Err(UnterminatedRegion {
            region: region.to_string(),
        })
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines_ignored() {
        let src = "\n// comment\n/* block */\nlet x = 1;\n   \nlet y = 2;\n";
        let s = analyze_source(src, &BoilerplateSpec::spark());
        assert_eq!(s.total_loc, 2);
        assert_eq!(s.boilerplate_loc, 0);
    }

    #[test]
    fn boilerplate_patterns_match() {
        let src = "let out = mpirun(Placement::new(2, 2), |rank| {\n\
                   let v = data.len();\n\
                   rank.barrier();\n\
                   });";
        let s = analyze_source(src, &BoilerplateSpec::mpi());
        assert_eq!(s.total_loc, 4);
        assert_eq!(s.boilerplate_loc, 2);
        assert!((s.boilerplate_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn region_extraction() {
        let src = "fn other() {}\n\
                   // TABLE3-BEGIN: demo\n\
                   let pool = OmpPool::new(8);\n\
                   let total = work();\n\
                   // TABLE3-END: demo\n\
                   fn after() {}\n";
        let s = analyze_region(src, "demo", &BoilerplateSpec::openmp())
            .unwrap()
            .unwrap();
        assert_eq!(s.total_loc, 2);
        assert_eq!(s.boilerplate_loc, 1);
        assert_eq!(
            analyze_region(src, "missing", &BoilerplateSpec::openmp()),
            Ok(None)
        );
    }

    #[test]
    fn unterminated_region_is_a_hard_error() {
        let src = "// TABLE3-BEGIN: demo\nlet pool = OmpPool::new(8);\n";
        let err = analyze_region(src, "demo", &BoilerplateSpec::openmp()).unwrap_err();
        assert_eq!(err.region, "demo");
        assert!(err.to_string().contains("no matching TABLE3-END"));
        // A different region name is simply absent, not unterminated.
        assert_eq!(
            analyze_region(src, "other", &BoilerplateSpec::openmp()),
            Ok(None)
        );
    }

    #[test]
    fn boilerplate_specs_cover_all_paradigms() {
        for spec in [
            BoilerplateSpec::mpi(),
            BoilerplateSpec::openmp(),
            BoilerplateSpec::openshmem(),
            BoilerplateSpec::spark(),
            BoilerplateSpec::hadoop(),
        ] {
            assert!(
                !spec.patterns.is_empty(),
                "{} has no patterns",
                spec.paradigm
            );
        }
    }

    #[test]
    fn nested_block_comments_and_strings_counted_as_code() {
        // The classifier is line-based by design: a string containing
        // "//" is still a code line.
        let s = analyze_source("let u = \"https://x\";", &BoilerplateSpec::spark());
        assert_eq!(s.total_loc, 1);
    }

    #[test]
    fn empty_file_has_zero_pct() {
        let s = analyze_source("", &BoilerplateSpec::hadoop());
        assert_eq!(s.boilerplate_pct(), 0.0);
    }
}
