//! Acceptance test: the harness must *catch* a planted nondeterminism,
//! not just pass clean workloads.
//!
//! The plant is the classic leak this harness exists to find: a reduce
//! that iterates a `std::collections::HashMap` and lets the iteration
//! order — randomized per map instance by `RandomState` — decide the
//! order of simulation-visible operations. Every run permutes the
//! compute schedule, so the explorer's very first comparison diverges,
//! and the report must name the first differing event index.

use std::collections::HashMap;

use hpcbd_check::{lint_workload, Classification, Explorer};
use hpcbd_simnet::{NodeId, Sim, Topology, Work};

/// A single-process "reduce" whose visible-op order follows HashMap
/// iteration order. 16 distinct durations make any non-identity
/// permutation shift a prefix sum, i.e. move some event's start time.
fn planted_hashmap_reduce() {
    let mut sim = Sim::new(Topology::comet(1));
    sim.spawn(NodeId(0), "reduce", |ctx| {
        let mut acc: HashMap<u64, u64> = HashMap::new();
        for i in 0..16u64 {
            acc.insert(i, i + 1);
        }
        // The planted bug: host hash-seed-dependent iteration order
        // decides the schedule of visible compute operations.
        for v in acc.values() {
            ctx.compute(Work::flops(1.0e6 * *v as f64), 1.0);
        }
    });
    sim.run();
}

#[test]
fn explorer_catches_planted_hashmap_iteration_order() {
    let report = Explorer::new(0xBAD)
        .schedules(4)
        .explore(planted_hashmap_reduce);
    let d = report
        .divergence
        .expect("planted HashMap-order nondeterminism must be caught");
    assert!(
        d.event_index.is_some(),
        "report must name the first differing event index:\n{}",
        d.render()
    );
    assert!(d.order_key.is_some(), "report must carry the order key");
    assert_eq!(
        d.classification,
        Some(Classification::HostNondeterminism),
        "per-instance hash seeds do not reproduce under a replayed \
         schedule seed:\n{}",
        d.render()
    );
    let rendered = d.render();
    assert!(rendered.contains("event index:"), "render: {rendered}");
    assert!(rendered.contains("order key:"), "render: {rendered}");
}

#[test]
fn lint_catches_planted_hashmap_iteration_order() {
    let report = lint_workload(planted_hashmap_reduce);
    let d = report
        .divergence
        .expect("lint must catch the planted nondeterminism");
    // The very first skew condition (sequential replay) already exposes
    // a fresh-hash-seed leak.
    assert_eq!(d.condition, "sequential replay");
}
