//! The determinism lint: double-run a workload under skewed host
//! conditions and demand bit-identical captures.
//!
//! The explorer (`explore.rs`) attacks the *scheduler*; the lint attacks
//! the *host environment* the workload runs in. Each condition varies
//! one thing the engine's contract says must not matter:
//!
//! * **sequential replay** — the same sequential run twice; catches
//!   per-run nondeterminism with no concurrency at all (fresh hash
//!   seeds, iteration over address-keyed maps, wall-clock reads).
//! * **thread-count sweep** — parallel mode at 1, 2 and 8 threads;
//!   catches results that depend on how many compute segments overlap.
//! * **speculative sweep** — speculative (Time Warp) mode at 2 and 4
//!   threads; catches results that leak which operations committed
//!   optimistically versus conservatively, or rolled back and replayed.
//! * **shuffled shard polling** — perturbation seeds that jitter and
//!   reorder every queue interaction (holds, token keeps, fast-path
//!   defeats, speculation defeats, forced replays), so processes poll
//!   shared state in shuffled wall-clock orders; catches "first poller
//!   wins" races. Runs under both parallel and speculative mode.
//! * **allocator-address poisoning** — a seeded set of junk heap
//!   allocations is held alive across the run, shifting every address
//!   the workload's own allocations land on; catches any ordering
//!   derived from pointer values.
//!
//! All conditions compare against the same sequential oracle, so a lint
//! pass certifies one workload across the whole condition matrix.

use hpcbd_simnet::{det_hash, set_default_execution, set_perturbation, Execution, Perturbation};

use crate::compare::{compare_runs, Classification, Divergence};
use crate::explore::{harness_lock, run_captured, RestoreGlobals};

/// Thread counts the sweep condition runs at.
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];
/// Thread counts the speculative sweep runs at.
const SPEC_SWEEP: [usize; 2] = [2, 4];
/// Base seeds for the shuffled-polling condition.
const POLL_SEEDS: [u64; 2] = [0xD00D, 0xFEED];
/// Rounds of allocator poisoning.
const POISON_ROUNDS: u64 = 2;

/// Result of linting one workload.
#[derive(Debug)]
pub struct LintReport {
    /// Conditions that ran (in order), whether or not one diverged.
    pub conditions: Vec<String>,
    /// First divergence found, if any; `condition` names the culprit.
    pub divergence: Option<Divergence>,
}

impl LintReport {
    /// Panic with the first-divergence report unless every condition
    /// reproduced the oracle bit-identically.
    pub fn assert_clean(&self) {
        if let Some(d) = &self.divergence {
            panic!(
                "determinism lint failed after conditions {:?}:\n{}",
                self.conditions,
                d.render()
            );
        }
    }
}

/// Junk heap allocations with seeded sizes, held alive for the duration
/// of a poisoned run so the workload's own allocations land on shifted
/// addresses.
fn poison_allocations(round: u64) -> Vec<Vec<u8>> {
    (0..64u64)
        .map(|i| {
            let sz = 1 + (det_hash(&(0xA110Cu64, round, i)) % 4096) as usize;
            vec![0xA5u8; sz]
        })
        .collect()
}

/// Run the full lint matrix over a workload. The workload must be
/// re-runnable; each condition reruns it from scratch.
pub fn lint_workload<F: Fn()>(workload: F) -> LintReport {
    let _guard = harness_lock();
    let _restore = RestoreGlobals::capture();
    let mut conditions = Vec::new();

    set_perturbation(None);
    set_default_execution(Execution::Sequential);
    let oracle = run_captured(&workload);
    assert!(
        !oracle.is_empty(),
        "workload ran no simulations inside the capture window"
    );

    let check = |condition: String, conditions: &mut Vec<String>| -> Option<Divergence> {
        conditions.push(condition.clone());
        let run = run_captured(&workload);
        compare_runs(&oracle, &run).map(|mut d| {
            d.condition = condition;
            d
        })
    };

    // Sequential replay: divergence here is host nondeterminism by
    // construction (no scheduler involved).
    if let Some(mut d) = check("sequential replay".into(), &mut conditions) {
        d.classification = Some(Classification::HostNondeterminism);
        return LintReport {
            conditions,
            divergence: Some(d),
        };
    }

    for t in THREAD_SWEEP {
        set_default_execution(Execution::Parallel { threads: t });
        if let Some(d) = check(format!("thread sweep t={t}"), &mut conditions) {
            return LintReport {
                conditions,
                divergence: Some(d),
            };
        }
    }

    for t in SPEC_SWEEP {
        set_default_execution(Execution::Speculative { threads: t });
        if let Some(d) = check(format!("speculative sweep t={t}"), &mut conditions) {
            return LintReport {
                conditions,
                divergence: Some(d),
            };
        }
    }

    for seed in POLL_SEEDS {
        set_perturbation(Some(Perturbation::from_seed(seed)));
        for exec in [
            Execution::Parallel { threads: 4 },
            Execution::Speculative { threads: 4 },
        ] {
            set_default_execution(exec);
            let mode = if matches!(exec, Execution::Speculative { .. }) {
                "speculative"
            } else {
                "parallel"
            };
            let cond = format!("shuffled polling seed={seed:#x} mode={mode}");
            if let Some(d) = check(cond, &mut conditions) {
                return LintReport {
                    conditions,
                    divergence: Some(d),
                };
            }
        }
    }
    set_perturbation(None);

    for round in 0..POISON_ROUNDS {
        let _junk = poison_allocations(round);
        set_default_execution(Execution::Parallel { threads: 4 });
        let cond = format!("allocator poisoning round={round}");
        if let Some(d) = check(cond, &mut conditions) {
            return LintReport {
                conditions,
                divergence: Some(d),
            };
        }
    }

    LintReport {
        conditions,
        divergence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{MatchSpec, NodeId, Payload, Pid, Sim, Topology, Transport, Work};

    fn ring_workload() {
        let tr = Transport::ipoib_socket();
        let n = 4u32;
        let mut sim = Sim::new(Topology::comet(2));
        for p in 0..n {
            sim.spawn(NodeId(p % 2), format!("r{p}"), move |ctx| {
                ctx.compute(Work::flops(2.0e6), 1.0);
                ctx.send(Pid((p + 1) % n), 1, 512, Payload::Empty, &tr);
                ctx.recv(MatchSpec::tag(1));
            });
        }
        sim.run();
    }

    #[test]
    fn clean_workload_passes_the_full_matrix() {
        let report = lint_workload(ring_workload);
        report.assert_clean();
        // replay + 3 thread counts + 2 speculative counts
        // + 2 poll seeds x 2 modes + 2 poison rounds.
        assert_eq!(report.conditions.len(), 12);
    }

    #[test]
    fn poison_allocations_are_seeded_and_nonempty() {
        let a = poison_allocations(0);
        let b = poison_allocations(0);
        assert_eq!(
            a.iter().map(Vec::len).collect::<Vec<_>>(),
            b.iter().map(Vec::len).collect::<Vec<_>>()
        );
        let c = poison_allocations(1);
        assert_ne!(
            a.iter().map(Vec::len).collect::<Vec<_>>(),
            c.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }
}
