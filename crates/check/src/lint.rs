//! The determinism lint: double-run a workload under skewed host
//! conditions and demand bit-identical captures.
//!
//! The explorer (`explore.rs`) attacks the *scheduler*; the lint attacks
//! the *host environment* the workload runs in. Each condition varies
//! one thing the engine's contract says must not matter:
//!
//! * **sequential replay** — the same sequential run twice; catches
//!   per-run nondeterminism with no concurrency at all (fresh hash
//!   seeds, iteration over address-keyed maps, wall-clock reads).
//! * **thread-count sweep** — parallel mode at 1, 2 and 8 threads;
//!   catches results that depend on how many compute segments overlap.
//! * **speculative sweep** — speculative (Time Warp) mode at 2 and 4
//!   threads; catches results that leak which operations committed
//!   optimistically versus conservatively, or rolled back and replayed.
//! * **shuffled shard polling** — perturbation seeds that jitter and
//!   reorder every queue interaction (holds, token keeps, fast-path
//!   defeats, speculation defeats, forced replays), so processes poll
//!   shared state in shuffled wall-clock orders; catches "first poller
//!   wins" races. Runs under both parallel and speculative mode.
//! * **allocator-address poisoning** — a seeded set of junk heap
//!   allocations is held alive across the run, shifting every address
//!   the workload's own allocations land on; catches any ordering
//!   derived from pointer values.
//! * **telemetry digest identity** — the same sequential run with
//!   telemetry sampling on must produce the *same conformance digest*
//!   as the telemetry-off oracle: telemetry is excluded from digests
//!   (like `spec_commits`) and must never perturb the simulation.
//! * **telemetry cross-mode identity** — the serialized telemetry
//!   section itself must be byte-identical across sequential,
//!   parallel and speculative execution; catches any wall-clock or
//!   schedule state leaking into a metric series.
//!
//! All conditions compare against the same sequential oracle, so a lint
//! pass certifies one workload across the whole condition matrix.

use hpcbd_simnet::{
    det_hash, set_default_execution, set_perturbation, set_telemetry_interval, Execution,
    Perturbation, RunCapture,
};

use crate::compare::{capture_digest, compare_runs, Classification, Divergence};
use crate::explore::{harness_lock, run_captured, RestoreGlobals};

/// Thread counts the sweep condition runs at.
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];
/// Thread counts the speculative sweep runs at.
const SPEC_SWEEP: [usize; 2] = [2, 4];
/// Base seeds for the shuffled-polling condition.
const POLL_SEEDS: [u64; 2] = [0xD00D, 0xFEED];
/// Rounds of allocator poisoning.
const POISON_ROUNDS: u64 = 2;
/// Sampling interval the telemetry conditions run with (1 µs of
/// virtual time — fine enough that lint workloads span many windows).
const TELEMETRY_LINT_INTERVAL_NS: u64 = 1_000;

/// Result of linting one workload.
#[derive(Debug)]
pub struct LintReport {
    /// Conditions that ran (in order), whether or not one diverged.
    pub conditions: Vec<String>,
    /// First divergence found, if any; `condition` names the culprit.
    pub divergence: Option<Divergence>,
}

impl LintReport {
    /// Panic with the first-divergence report unless every condition
    /// reproduced the oracle bit-identically.
    pub fn assert_clean(&self) {
        if let Some(d) = &self.divergence {
            panic!(
                "determinism lint failed after conditions {:?}:\n{}",
                self.conditions,
                d.render()
            );
        }
    }
}

/// Junk heap allocations with seeded sizes, held alive for the duration
/// of a poisoned run so the workload's own allocations land on shifted
/// addresses.
fn poison_allocations(round: u64) -> Vec<Vec<u8>> {
    (0..64u64)
        .map(|i| {
            let sz = 1 + (det_hash(&(0xA110Cu64, round, i)) % 4096) as usize;
            vec![0xA5u8; sz]
        })
        .collect()
}

/// Run the full lint matrix over a workload. The workload must be
/// re-runnable; each condition reruns it from scratch.
pub fn lint_workload<F: Fn()>(workload: F) -> LintReport {
    let _guard = harness_lock();
    let _restore = RestoreGlobals::capture();
    let mut conditions = Vec::new();

    set_perturbation(None);
    set_default_execution(Execution::Sequential);
    let oracle = run_captured(&workload);
    assert!(
        !oracle.is_empty(),
        "workload ran no simulations inside the capture window"
    );

    let check = |condition: String, conditions: &mut Vec<String>| -> Option<Divergence> {
        conditions.push(condition.clone());
        let run = run_captured(&workload);
        compare_runs(&oracle, &run).map(|mut d| {
            d.condition = condition;
            d
        })
    };

    // Sequential replay: divergence here is host nondeterminism by
    // construction (no scheduler involved).
    if let Some(mut d) = check("sequential replay".into(), &mut conditions) {
        d.classification = Some(Classification::HostNondeterminism);
        return LintReport {
            conditions,
            divergence: Some(d),
        };
    }

    for t in THREAD_SWEEP {
        set_default_execution(Execution::Parallel { threads: t });
        if let Some(d) = check(format!("thread sweep t={t}"), &mut conditions) {
            return LintReport {
                conditions,
                divergence: Some(d),
            };
        }
    }

    for t in SPEC_SWEEP {
        set_default_execution(Execution::Speculative { threads: t });
        if let Some(d) = check(format!("speculative sweep t={t}"), &mut conditions) {
            return LintReport {
                conditions,
                divergence: Some(d),
            };
        }
    }

    for seed in POLL_SEEDS {
        set_perturbation(Some(Perturbation::from_seed(seed)));
        for exec in [
            Execution::Parallel { threads: 4 },
            Execution::Speculative { threads: 4 },
        ] {
            set_default_execution(exec);
            let mode = if matches!(exec, Execution::Speculative { .. }) {
                "speculative"
            } else {
                "parallel"
            };
            let cond = format!("shuffled polling seed={seed:#x} mode={mode}");
            if let Some(d) = check(cond, &mut conditions) {
                return LintReport {
                    conditions,
                    divergence: Some(d),
                };
            }
        }
    }
    set_perturbation(None);

    for round in 0..POISON_ROUNDS {
        let _junk = poison_allocations(round);
        set_default_execution(Execution::Parallel { threads: 4 });
        let cond = format!("allocator poisoning round={round}");
        if let Some(d) = check(cond, &mut conditions) {
            return LintReport {
                conditions,
                divergence: Some(d),
            };
        }
    }

    // Telemetry digest identity: sampling on must not perturb the
    // simulation, and the telemetry itself must be digest-excluded, so
    // the conformance digest matches the telemetry-off oracle exactly.
    set_default_execution(Execution::Sequential);
    set_telemetry_interval(Some(TELEMETRY_LINT_INTERVAL_NS));
    conditions.push("telemetry digest identity".into());
    let telemetry_seq = run_captured(&workload);
    let mut divergence = compare_runs(&oracle, &telemetry_seq).map(|mut d| {
        d.condition = "telemetry digest identity".into();
        d
    });
    if divergence.is_none() {
        let (a, b) = (capture_digest(&oracle), capture_digest(&telemetry_seq));
        if a != b {
            divergence = Some(telemetry_divergence(
                "telemetry digest identity",
                "capture_digest",
                &a,
                &b,
            ));
        }
    }
    if let Some(d) = divergence {
        set_telemetry_interval(None);
        return LintReport {
            conditions,
            divergence: Some(d),
        };
    }

    // Telemetry cross-mode identity: the serialized telemetry section
    // must be byte-identical whichever execution mode produced it.
    let oracle_telemetry = serialize_telemetry(&telemetry_seq);
    for exec in [
        Execution::Parallel { threads: 2 },
        Execution::Speculative { threads: 2 },
    ] {
        set_default_execution(exec);
        let mode = if matches!(exec, Execution::Speculative { .. }) {
            "speculative"
        } else {
            "parallel"
        };
        let cond = format!("telemetry cross-mode identity mode={mode}");
        conditions.push(cond.clone());
        let run = run_captured(&workload);
        let got = serialize_telemetry(&run);
        if oracle_telemetry != got {
            let d = first_telemetry_divergence(&cond, &oracle_telemetry, &got);
            set_telemetry_interval(None);
            return LintReport {
                conditions,
                divergence: Some(d),
            };
        }
    }
    set_telemetry_interval(None);

    LintReport {
        conditions,
        divergence: None,
    }
}

/// Serialize each capture's sampled telemetry to its canonical JSON
/// text (empty string for a capture that somehow sampled nothing).
fn serialize_telemetry(caps: &[RunCapture]) -> Vec<String> {
    caps.iter()
        .map(|c| {
            hpcbd_obs::collect_telemetry(c)
                .map(|t| t.to_json_value().serialize())
                .unwrap_or_default()
        })
        .collect()
}

fn telemetry_divergence(condition: &str, field: &str, expected: &str, got: &str) -> Divergence {
    Divergence {
        condition: condition.to_string(),
        capture_index: 0,
        event_index: None,
        order_key: None,
        pids: Vec::new(),
        field: field.to_string(),
        expected: expected.to_string(),
        got: got.to_string(),
        classification: None,
    }
}

/// Locate the first capture whose serialized telemetry differs and
/// report a window around the first differing byte.
fn first_telemetry_divergence(condition: &str, expected: &[String], got: &[String]) -> Divergence {
    for (i, (a, b)) in expected.iter().zip(got.iter()).enumerate() {
        if a != b {
            let at = a
                .bytes()
                .zip(b.bytes())
                .position(|(x, y)| x != y)
                .unwrap_or_else(|| a.len().min(b.len()));
            let ctx = |s: &str| {
                let bytes = s.as_bytes();
                let lo = at.saturating_sub(40);
                let hi = (at + 40).min(bytes.len());
                format!("...{}...", String::from_utf8_lossy(&bytes[lo..hi]))
            };
            let mut d = telemetry_divergence(condition, "telemetry", &ctx(a), &ctx(b));
            d.capture_index = i;
            return d;
        }
    }
    telemetry_divergence(
        condition,
        "telemetry capture count",
        &expected.len().to_string(),
        &got.len().to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{MatchSpec, NodeId, Payload, Pid, Sim, Topology, Transport, Work};

    fn ring_workload() {
        let tr = Transport::ipoib_socket();
        let n = 4u32;
        let mut sim = Sim::new(Topology::comet(2));
        for p in 0..n {
            sim.spawn(NodeId(p % 2), format!("r{p}"), move |ctx| {
                ctx.compute(Work::flops(2.0e6), 1.0);
                ctx.send(Pid((p + 1) % n), 1, 512, Payload::Empty, &tr);
                ctx.recv(MatchSpec::tag(1));
            });
        }
        sim.run();
    }

    #[test]
    fn clean_workload_passes_the_full_matrix() {
        let report = lint_workload(ring_workload);
        report.assert_clean();
        // replay + 3 thread counts + 2 speculative counts
        // + 2 poll seeds x 2 modes + 2 poison rounds
        // + telemetry digest identity + 2 telemetry cross-mode runs.
        assert_eq!(report.conditions.len(), 15);
    }

    #[test]
    fn poison_allocations_are_seeded_and_nonempty() {
        let a = poison_allocations(0);
        let b = poison_allocations(0);
        assert_eq!(
            a.iter().map(Vec::len).collect::<Vec<_>>(),
            b.iter().map(Vec::len).collect::<Vec<_>>()
        );
        let c = poison_allocations(1);
        assert_ne!(
            a.iter().map(Vec::len).collect::<Vec<_>>(),
            c.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }
}
