//! The schedule-perturbation explorer: adversarial determinism checking
//! against the sequential oracle.
//!
//! One exploration runs a workload under three regimes and demands
//! bit-identical captures from all of them:
//!
//! 1. **Oracle** — sequential execution, no perturbation. This is the
//!    reference schedule the engine's contract is stated against.
//! 2. **Sequential replay** — the same thing again. A divergence here
//!    cannot involve the scheduler at all and is immediately classified
//!    as host nondeterminism (hash seeds, addresses, wall clock).
//! 3. **Perturbed parallel runs** — `schedules` runs under
//!    [`Perturbation::from_seed`] with per-run seeds derived from the
//!    explorer seed, each driving the parallel engine through a
//!    different *legal* commit schedule (see `hpcbd_simnet::perturb`
//!    for the legality argument).
//!
//! When a perturbed run diverges, the explorer shrinks the divergence to
//! the minimal event prefix — because captures are compared in the
//! deterministic export order, the first differing event index *is* the
//! minimal prefix (see `compare.rs`) — and then replays the same
//! perturbation seed once more to classify it: a run that reproduces
//! itself under its own seed is **schedule-dependent** (the engine
//! contract is broken), one that does not is **host nondeterminism**
//! (something outside virtual time leaks into results).
//!
//! Engine-global state (default execution mode, installed perturbation,
//! the capture window) is process-wide, so explorations serialize on a
//! harness lock and restore previous globals on exit, panic included.

use parking_lot::{Mutex, MutexGuard};

use hpcbd_simnet::{
    begin_capture, default_execution, det_hash, end_capture, set_default_execution,
    set_perturbation, set_telemetry_interval, telemetry_interval, Execution, Perturbation,
    RunCapture,
};

use crate::compare::{capture_digest, compare_runs, Classification, Divergence};

static HARNESS: Mutex<()> = Mutex::new(());

/// Serialize harness activity process-wide. Exploration, lint and any
/// test that toggles engine globals directly must hold this.
pub fn harness_lock() -> MutexGuard<'static, ()> {
    HARNESS.lock()
}

/// Restores the pre-harness engine globals on drop (panic included).
pub(crate) struct RestoreGlobals {
    prev: Execution,
    prev_telemetry: Option<u64>,
}

impl RestoreGlobals {
    pub(crate) fn capture() -> RestoreGlobals {
        RestoreGlobals {
            prev: default_execution(),
            prev_telemetry: telemetry_interval(),
        }
    }
}

impl Drop for RestoreGlobals {
    fn drop(&mut self) {
        set_perturbation(None);
        set_default_execution(self.prev);
        set_telemetry_interval(self.prev_telemetry);
    }
}

/// Run the workload inside a capture window and take its captures.
pub(crate) fn run_captured<F: Fn()>(workload: &F) -> Vec<RunCapture> {
    begin_capture();
    workload();
    end_capture()
}

/// Result of one exploration.
#[derive(Debug)]
pub struct ExploreReport {
    /// Perturbed schedules completed (including a divergent one).
    pub schedules_run: usize,
    /// The first divergence found, shrunk and classified, if any.
    pub divergence: Option<Divergence>,
    /// SHA-256 digest of the oracle capture sequence.
    pub oracle_digest: String,
}

impl ExploreReport {
    /// Panic with the full first-divergence report unless every run was
    /// bit-identical to the oracle. The assertion form integration
    /// tests use.
    pub fn assert_deterministic(&self) {
        if let Some(d) = &self.divergence {
            panic!(
                "schedule exploration found a divergence after {} perturbed schedule(s):\n{}",
                self.schedules_run,
                d.render()
            );
        }
    }
}

/// Seeded explorer; builder-style configuration.
#[derive(Debug, Clone)]
pub struct Explorer {
    seed: u64,
    schedules: usize,
    threads: usize,
    speculative: bool,
}

impl Explorer {
    /// Explorer with `seed` driving every per-schedule perturbation,
    /// defaulting to 8 schedules on 4 threads.
    pub fn new(seed: u64) -> Explorer {
        Explorer {
            seed,
            schedules: 8,
            threads: 4,
            speculative: false,
        }
    }

    /// Number of perturbed parallel schedules to drive.
    pub fn schedules(mut self, n: usize) -> Explorer {
        self.schedules = n;
        self
    }

    /// Concurrency cap for the perturbed parallel runs.
    pub fn threads(mut self, n: usize) -> Explorer {
        self.threads = n.max(1);
        self
    }

    /// Drive the perturbed runs under [`Execution::Speculative`] instead
    /// of [`Execution::Parallel`]. The perturbation's speculation knobs
    /// (defeats, forced replays) only bite in this mode, so a
    /// speculative exploration stresses the optimistic commit/rollback
    /// machinery against the same sequential oracle.
    pub fn speculative(mut self, yes: bool) -> Explorer {
        self.speculative = yes;
        self
    }

    /// The perturbation seed used for schedule `i` (stable across
    /// explorer configurations, so a reported seed can be replayed
    /// directly).
    pub fn schedule_seed(&self, i: usize) -> u64 {
        det_hash(&(self.seed, i as u64, 0x5eedu64))
    }

    /// Run the exploration. The workload must be re-runnable: each call
    /// must build and run the same simulation(s) from scratch.
    pub fn explore<F: Fn()>(&self, workload: F) -> ExploreReport {
        let _guard = harness_lock();
        let _restore = RestoreGlobals::capture();

        set_perturbation(None);
        set_default_execution(Execution::Sequential);
        let oracle = run_captured(&workload);
        let oracle_digest = capture_digest(&oracle);
        assert!(
            !oracle.is_empty(),
            "workload ran no simulations inside the capture window"
        );

        // Sequential replay: no scheduler in play, so any divergence is
        // host nondeterminism by construction.
        let replay = run_captured(&workload);
        if let Some(mut d) = compare_runs(&oracle, &replay) {
            d.condition = "sequential replay".to_string();
            d.classification = Some(Classification::HostNondeterminism);
            return ExploreReport {
                schedules_run: 0,
                divergence: Some(d),
                oracle_digest,
            };
        }

        for i in 0..self.schedules {
            let seed = self.schedule_seed(i);
            set_perturbation(Some(Perturbation::from_seed(seed)));
            set_default_execution(if self.speculative {
                Execution::Speculative {
                    threads: self.threads,
                }
            } else {
                Execution::Parallel {
                    threads: self.threads,
                }
            });
            let run = run_captured(&workload);
            if let Some(mut d) = compare_runs(&oracle, &run) {
                // Classification replay: the same seed drives the same
                // perturbation decisions, so a schedule-dependent
                // divergence reproduces bit-identically.
                let again = run_captured(&workload);
                d.classification = Some(if compare_runs(&run, &again).is_none() {
                    Classification::ScheduleDependent
                } else {
                    Classification::HostNondeterminism
                });
                d.condition = format!(
                    "perturbed schedule #{i} seed={seed:#018x} threads={}{}",
                    self.threads,
                    if self.speculative { " speculative" } else { "" }
                );
                return ExploreReport {
                    schedules_run: i + 1,
                    divergence: Some(d),
                    oracle_digest,
                };
            }
        }

        ExploreReport {
            schedules_run: self.schedules,
            divergence: None,
            oracle_digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{MatchSpec, NodeId, Payload, Pid, Sim, Topology, Transport, Work};

    fn ping_pong_workload() {
        let tr = Transport::rdma_verbs();
        let mut sim = Sim::new(Topology::comet(2));
        for p in 0..4u32 {
            sim.spawn(NodeId(p % 2), format!("p{p}"), move |ctx| {
                let peer = Pid(p ^ 1);
                ctx.compute(Work::flops(1.0e6 * (p as f64 + 1.0)), 1.0);
                ctx.send(peer, 7, 256, Payload::Empty, &tr);
                ctx.recv(MatchSpec::tag(7));
                ctx.compute(Work::flops(5.0e5), 1.0);
            });
        }
        sim.run();
    }

    #[test]
    fn clean_workload_explores_clean() {
        let report = Explorer::new(0xE0)
            .schedules(6)
            .threads(4)
            .explore(ping_pong_workload);
        assert_eq!(report.schedules_run, 6);
        report.assert_deterministic();
    }

    /// Device-contention workload: every process hammers its node's
    /// scratch disk and the shared NFS server, so validated-class
    /// speculations frequently find their snapshot stale and replay.
    fn disk_contention_workload() {
        let tr = Transport::ipoib_socket();
        let n = 6u32;
        let mut sim = Sim::new(Topology::comet(2));
        for p in 0..n {
            sim.spawn(NodeId(p % 2), format!("d{p}"), move |ctx| {
                for round in 0..3u64 {
                    ctx.compute(Work::flops(1.0e5 * (p as f64 + 1.0)), 1.0);
                    ctx.disk_write(1 << (14 + (p + round as u32) % 3));
                    ctx.send(Pid((p + 1) % n), 2, 128, Payload::Empty, &tr);
                    ctx.recv(MatchSpec::tag(2));
                    ctx.nfs_read(1 << 12);
                }
            });
        }
        sim.run();
    }

    #[test]
    fn speculative_exploration_of_contended_devices_is_clean() {
        let report = Explorer::new(0x5bec)
            .schedules(6)
            .threads(4)
            .speculative(true)
            .explore(disk_contention_workload);
        assert_eq!(report.schedules_run, 6);
        report.assert_deterministic();
    }

    #[test]
    fn schedule_seeds_are_stable_and_distinct() {
        let e = Explorer::new(1);
        assert_eq!(e.schedule_seed(0), Explorer::new(1).schedule_seed(0));
        assert_ne!(e.schedule_seed(0), e.schedule_seed(1));
        assert_ne!(e.schedule_seed(0), Explorer::new(2).schedule_seed(0));
    }

    #[test]
    fn globals_are_restored_after_explore() {
        let before = default_execution();
        Explorer::new(3).schedules(1).explore(ping_pong_workload);
        assert_eq!(default_execution(), before);
        assert!(hpcbd_simnet::current_perturbation().is_none());
    }

    #[test]
    #[should_panic(expected = "no simulations")]
    fn empty_workload_is_rejected() {
        Explorer::new(0).schedules(1).explore(|| {});
    }
}
