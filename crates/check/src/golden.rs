//! The golden digest registry: pinned `--quick` outputs for every bench
//! bin, plus a SHA-256 manifest, under `results/golden/`.
//!
//! Each entry is the bin's full deterministic stdout at
//! `<name>.quick.txt` — committing the whole output (not just a hash)
//! makes a mismatch diagnosable in the gate log via a first-differing-
//! line diff, and makes golden churn reviewable in the PR diff. The
//! `MANIFEST.sha256` file pins each entry's digest so a hand-edited or
//! truncated golden is itself caught.
//!
//! Workflow: the `conformance` bin recomputes every output and diffs it
//! against this registry (`conformance gate`); an intentional behaviour
//! change re-pins with `conformance gate --bless`, and the reviewer sees
//! exactly which table rows moved.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::sha256::sha256_hex;

/// Manifest file name inside the registry directory.
pub const MANIFEST: &str = "MANIFEST.sha256";

/// Outcome of checking one output against the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenStatus {
    /// Output matches the pinned golden and the manifest agrees.
    Match,
    /// No golden pinned yet for this name.
    Missing,
    /// Output (or the manifest) disagrees; `diag` holds a
    /// first-divergence diff ready for the gate log.
    Mismatch {
        /// Human-readable diagnosis.
        diag: String,
    },
}

/// A directory of pinned golden outputs plus their digest manifest.
#[derive(Debug, Clone)]
pub struct GoldenRegistry {
    dir: PathBuf,
}

impl GoldenRegistry {
    /// Registry rooted at `dir` (created lazily on first bless).
    pub fn open(dir: impl Into<PathBuf>) -> GoldenRegistry {
        GoldenRegistry { dir: dir.into() }
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File a golden entry lives at.
    pub fn path_for(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.quick.txt"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST)
    }

    /// Parsed manifest: entry file name → pinned SHA-256. Missing
    /// manifest reads as empty.
    pub fn manifest(&self) -> io::Result<BTreeMap<String, String>> {
        let text = match std::fs::read_to_string(self.manifest_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
            Err(e) => return Err(e),
        };
        let mut map = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            // `<sha256>  <file>` — same shape sha256sum emits/accepts.
            if let Some((digest, file)) = line.split_once("  ") {
                map.insert(file.to_string(), digest.to_string());
            }
        }
        Ok(map)
    }

    /// Check one recomputed output against its pinned golden.
    pub fn check(&self, name: &str, output: &str) -> io::Result<GoldenStatus> {
        let path = self.path_for(name);
        let pinned = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(GoldenStatus::Missing),
            Err(e) => return Err(e),
        };
        if pinned != output {
            let diag = match hpcbd_obs::first_divergence(&pinned, output) {
                Some(d) => d.render(),
                // Byte-unequal but line-equal can only be a trailing
                // newline / CR difference.
                None => "outputs differ only in trailing whitespace/newlines".to_string(),
            };
            return Ok(GoldenStatus::Mismatch {
                diag: format!(
                    "{diag}\n  pinned sha256: {}\n  output sha256: {}",
                    sha256_hex(pinned.as_bytes()),
                    sha256_hex(output.as_bytes())
                ),
            });
        }
        // Output matches the file; the manifest must agree with both,
        // otherwise the registry itself was tampered with or half-updated.
        let file = format!("{name}.quick.txt");
        match self.manifest()?.get(&file) {
            Some(d) if *d == sha256_hex(output.as_bytes()) => Ok(GoldenStatus::Match),
            Some(d) => Ok(GoldenStatus::Mismatch {
                diag: format!(
                    "golden file matches but {MANIFEST} is stale for {file}:\n  \
                     manifest sha256: {d}\n  file sha256:     {}",
                    sha256_hex(output.as_bytes())
                ),
            }),
            None => Ok(GoldenStatus::Mismatch {
                diag: format!("golden file exists but {MANIFEST} has no entry for {file}"),
            }),
        }
    }

    /// Pin `output` as the golden for `name`: write the entry file and
    /// update its manifest line (manifest stays sorted by file name).
    pub fn bless(&self, name: &str, output: &str) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        std::fs::write(self.path_for(name), output)?;
        let file = format!("{name}.quick.txt");
        let mut manifest = self.manifest()?;
        manifest.insert(file, sha256_hex(output.as_bytes()));
        let mut text = String::new();
        for (f, d) in &manifest {
            text.push_str(&format!("{d}  {f}\n"));
        }
        std::fs::write(self.manifest_path(), text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch_registry() -> GoldenRegistry {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "hpcbd-golden-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        GoldenRegistry::open(dir)
    }

    #[test]
    fn bless_then_check_roundtrips() {
        let reg = scratch_registry();
        assert_eq!(
            reg.check("t1", "row 1\nrow 2\n").unwrap(),
            GoldenStatus::Missing
        );
        reg.bless("t1", "row 1\nrow 2\n").unwrap();
        assert_eq!(
            reg.check("t1", "row 1\nrow 2\n").unwrap(),
            GoldenStatus::Match
        );
    }

    #[test]
    fn mismatch_reports_first_divergent_line_and_digests() {
        let reg = scratch_registry();
        reg.bless("t1", "row 1\nrow 2\n").unwrap();
        match reg.check("t1", "row 1\nrow X\n").unwrap() {
            GoldenStatus::Mismatch { diag } => {
                assert!(diag.contains("line 2"), "diag: {diag}");
                assert!(diag.contains("row 2"), "diag: {diag}");
                assert!(diag.contains("row X"), "diag: {diag}");
                assert!(diag.contains("sha256"), "diag: {diag}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn stale_manifest_is_a_mismatch() {
        let reg = scratch_registry();
        reg.bless("t1", "a\n").unwrap();
        // Rewrite the golden file behind the manifest's back.
        std::fs::write(reg.path_for("t1"), "b\n").unwrap();
        match reg.check("t1", "b\n").unwrap() {
            GoldenStatus::Mismatch { diag } => {
                assert!(diag.contains("stale"), "diag: {diag}")
            }
            other => panic!("expected stale-manifest mismatch, got {other:?}"),
        }
    }

    #[test]
    fn manifest_stays_sorted_across_blesses() {
        let reg = scratch_registry();
        reg.bless("zeta", "z\n").unwrap();
        reg.bless("alpha", "a\n").unwrap();
        reg.bless("zeta", "z2\n").unwrap();
        let manifest = reg.manifest().unwrap();
        let files: Vec<&String> = manifest.keys().collect();
        assert_eq!(files, vec!["alpha.quick.txt", "zeta.quick.txt"]);
        assert_eq!(reg.check("zeta", "z2\n").unwrap(), GoldenStatus::Match);
        assert_eq!(reg.check("alpha", "a\n").unwrap(), GoldenStatus::Match);
    }
}
