//! `hpcbd-check` — the schedule-exploration conformance harness.
//!
//! The simulator's headline claim is *bit determinism*: every virtual
//! time, table, trace and report is a pure function of the workload,
//! identical across sequential and parallel execution and across hosts.
//! This crate tests that claim adversarially instead of incidentally:
//!
//! * [`explore`] drives the parallel engine through many alternate
//!   *legal* schedules (seeded perturbations of grant timing, token
//!   retention, fast-path use and lock-race order — see
//!   [`hpcbd_simnet::perturb`]) and demands every run reproduce the
//!   sequential oracle bit-for-bit. Divergences are shrunk to the first
//!   differing event — `(event index, pids, order key, record)` — and
//!   classified by replay as schedule-dependent or host nondeterminism.
//! * [`campaign`] generates seeded adversarial fault campaigns (crash
//!   storms, correlated failures, straggler bursts, partition+drop
//!   combos, crashes inside checkpoint drains) and demands every run
//!   end digest-equal to the fault-free oracle or in a structured
//!   abort — never a hang, never a silent corruption. Violations are
//!   shrunk to a minimal fault plan by delta debugging.
//! * [`lint`] double-runs workloads under skewed host conditions:
//!   thread-count sweeps, shuffled shard polling, allocator-address
//!   poisoning.
//! * [`golden`] pins full `--quick` outputs of every bench bin under
//!   `results/golden/` with a SHA-256 manifest; the `conformance` bin
//!   (in `hpcbd-bench`) recomputes and diffs them in CI.
//! * [`compare`] and [`sha256`] are the shared comparison and digest
//!   machinery.

#![warn(missing_docs)]

pub mod campaign;
pub mod compare;
pub mod explore;
pub mod golden;
pub mod lint;
pub mod sha256;

pub use campaign::{
    classify_run, generate_campaigns, generate_plan, shrink_plan, Campaign, CampaignKind,
    CampaignOutcome, CampaignSpace, CampaignTally,
};
pub use compare::{capture_digest, compare_captures, compare_runs, Classification, Divergence};
pub use explore::{harness_lock, ExploreReport, Explorer};
pub use golden::{GoldenRegistry, GoldenStatus, MANIFEST};
pub use lint::{lint_workload, LintReport};
pub use sha256::{sha256_hex, Sha256};
