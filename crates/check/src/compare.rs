//! Capture comparison: locate the first divergence between two runs of
//! the same workload, down to the event index and order key.
//!
//! The event streams being compared are already in the engine's
//! deterministic export order (`(start, pid, end, kind)`), so the first
//! index at which they disagree *is* the minimal divergent prefix: every
//! earlier event is identical in both runs, and truncating either stream
//! just before that index yields equal prefixes. The explorer therefore
//! "shrinks" a divergence simply by scanning for that index — no
//! re-execution needed — and reports it as
//! `(event index, pids, order key, first differing record)`.

use hpcbd_simnet::RunCapture;

/// How a divergence replays, established by re-running the same
/// perturbation seed (see `explore.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// The divergent run reproduces bit-identically under its own seed:
    /// the outcome depends on the (legal) schedule, i.e. the engine's
    /// determinism contract itself is broken.
    ScheduleDependent,
    /// The divergent run does not even reproduce itself: some host
    /// nondeterminism (hash seeds, addresses, wall clock) leaks into
    /// virtual-time state.
    HostNondeterminism,
}

/// A minimal first-divergence report between an oracle run and a
/// perturbed / replayed run.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which harness condition produced the divergent run
    /// (e.g. `perturbed schedule seed=0x1234`, `thread sweep t=8`).
    pub condition: String,
    /// Index of the divergent capture within the workload's capture
    /// sequence (a workload may run several simulations).
    pub capture_index: usize,
    /// Index of the first differing event in the deterministic event
    /// order, when the divergence is in the event stream.
    pub event_index: Option<usize>,
    /// Order key `(virtual time ns, pid)` of the first differing event
    /// (taken from whichever side still has an event at that index).
    pub order_key: Option<(u64, u32)>,
    /// Pids implicated by the first differing record (deduplicated).
    pub pids: Vec<u32>,
    /// Which field diverged (`events`, `makespan`, `stats[3]`, ...).
    pub field: String,
    /// The oracle's value at the divergence point.
    pub expected: String,
    /// The divergent run's value at the same point.
    pub got: String,
    /// Replay classification, once established.
    pub classification: Option<Classification>,
}

impl Divergence {
    /// Multi-line human rendering, one screen, diagnosis first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "DIVERGENCE under {}: field `{}` of capture {}\n",
            self.condition, self.field, self.capture_index
        ));
        if let Some(i) = self.event_index {
            out.push_str(&format!("  event index: {i}\n"));
        }
        if let Some((t, p)) = self.order_key {
            out.push_str(&format!("  order key:   (t={t}ns, pid={p})\n"));
        }
        if !self.pids.is_empty() {
            let pids: Vec<String> = self.pids.iter().map(|p| format!("p{p}")).collect();
            out.push_str(&format!("  pids:        {}\n", pids.join(", ")));
        }
        out.push_str(&format!("  expected:    {}\n", self.expected));
        out.push_str(&format!("  got:         {}\n", self.got));
        match self.classification {
            Some(Classification::ScheduleDependent) => out.push_str(
                "  class:       schedule-dependent (reproduces under its seed; \
                 determinism contract broken)\n",
            ),
            Some(Classification::HostNondeterminism) => out.push_str(
                "  class:       host nondeterminism (does not reproduce under \
                 its own seed; hash seeds / addresses / wall clock leak)\n",
            ),
            None => {}
        }
        out
    }
}

fn mismatch(
    capture_index: usize,
    field: &str,
    expected: impl std::fmt::Debug,
    got: impl std::fmt::Debug,
) -> Divergence {
    Divergence {
        condition: String::new(),
        capture_index,
        event_index: None,
        order_key: None,
        pids: Vec::new(),
        field: field.to_string(),
        expected: format!("{expected:?}"),
        got: format!("{got:?}"),
        classification: None,
    }
}

/// Compare one capture against the oracle's; `None` when identical.
pub fn compare_captures(idx: usize, expected: &RunCapture, got: &RunCapture) -> Option<Divergence> {
    // Scalar run-level fields first: a mismatch there usually explains
    // (and subsumes) any event-stream difference.
    if expected.proc_names != got.proc_names {
        return Some(mismatch(
            idx,
            "proc_names",
            &expected.proc_names,
            &got.proc_names,
        ));
    }
    if expected.proc_nodes != got.proc_nodes {
        return Some(mismatch(
            idx,
            "proc_nodes",
            &expected.proc_nodes,
            &got.proc_nodes,
        ));
    }
    if expected.cluster_nodes != got.cluster_nodes {
        return Some(mismatch(
            idx,
            "cluster_nodes",
            expected.cluster_nodes,
            got.cluster_nodes,
        ));
    }
    if expected.dropped_msgs != got.dropped_msgs {
        return Some(mismatch(
            idx,
            "dropped_msgs",
            expected.dropped_msgs,
            got.dropped_msgs,
        ));
    }

    // Event streams: both sides are in the deterministic export order,
    // so the first differing index is the minimal divergent prefix.
    let n = expected.events.len().min(got.events.len());
    for i in 0..n {
        let (e, g) = (&expected.events[i], &got.events[i]);
        if e != g {
            let mut pids = vec![e.pid.0, g.pid.0];
            pids.dedup();
            let mut d = mismatch(idx, "events", e, g);
            d.event_index = Some(i);
            d.order_key = Some((e.start.nanos(), e.pid.0));
            d.pids = pids;
            return Some(d);
        }
    }
    if expected.events.len() != got.events.len() {
        // One stream is a strict prefix of the other: diverges at the
        // shorter side's end.
        let (side, extra) = if expected.events.len() > got.events.len() {
            ("missing", &expected.events[n])
        } else {
            ("extra", &got.events[n])
        };
        let mut d = mismatch(
            idx,
            "events",
            format!("{} events", expected.events.len()),
            format!("{} events ({side} record at index {n})", got.events.len()),
        );
        d.event_index = Some(n);
        d.order_key = Some((extra.start.nanos(), extra.pid.0));
        d.pids = vec![extra.pid.0];
        return Some(d);
    }

    // Aggregates last: with identical event streams these only differ
    // if bookkeeping itself is schedule-dependent.
    for (pid, (e, g)) in expected.finishes.iter().zip(&got.finishes).enumerate() {
        if e != g {
            let mut d = mismatch(idx, &format!("finishes[{pid}]"), e, g);
            d.pids = vec![pid as u32];
            return Some(d);
        }
    }
    for (pid, (e, g)) in expected.stats.iter().zip(&got.stats).enumerate() {
        if e != g {
            let mut d = mismatch(idx, &format!("stats[{pid}]"), e, g);
            d.pids = vec![pid as u32];
            return Some(d);
        }
    }
    if expected.makespan != got.makespan {
        return Some(mismatch(idx, "makespan", expected.makespan, got.makespan));
    }
    None
}

/// Compare a whole capture sequence (a workload may run many sims)
/// against the oracle's; `None` when byte-identical.
pub fn compare_runs(expected: &[RunCapture], got: &[RunCapture]) -> Option<Divergence> {
    if expected.len() != got.len() {
        return Some(mismatch(
            expected.len().min(got.len()),
            "capture_count",
            expected.len(),
            got.len(),
        ));
    }
    expected
        .iter()
        .zip(got)
        .enumerate()
        .find_map(|(i, (e, g))| compare_captures(i, e, g))
}

/// A SHA-256 digest over a canonical serialization of a capture
/// sequence: equal digests ⇔ bit-identical virtual-time outcomes.
/// Useful where a property test wants one comparable value per run.
pub fn capture_digest(caps: &[RunCapture]) -> String {
    use std::fmt::Write as _;
    let mut buf = String::new();
    for c in caps {
        let _ = writeln!(
            buf,
            "run names={:?} nodes={:?} cluster={} dropped={} makespan={:?}",
            c.proc_names, c.proc_nodes, c.cluster_nodes, c.dropped_msgs, c.makespan
        );
        for (pid, (f, s)) in c.finishes.iter().zip(&c.stats).enumerate() {
            let _ = writeln!(buf, "p{pid} finish={f:?} stats={s:?}");
        }
        for e in &c.events {
            let _ = writeln!(buf, "{e:?}");
        }
    }
    crate::sha256::sha256_hex(buf.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::{EventKind, NodeId, Pid, ProcStats, RunCapture, SimTime, TraceEvent};

    fn cap() -> RunCapture {
        RunCapture {
            proc_names: vec!["a".into(), "b".into()],
            proc_nodes: vec![NodeId(0), NodeId(1)],
            finishes: vec![SimTime(10), SimTime(20)],
            stats: vec![ProcStats::default(), ProcStats::default()],
            makespan: SimTime(20),
            cluster_nodes: 2,
            dropped_msgs: 0,
            events: vec![
                TraceEvent {
                    pid: Pid(0),
                    start: SimTime(0),
                    end: SimTime(5),
                    kind: EventKind::Compute,
                },
                TraceEvent {
                    pid: Pid(1),
                    start: SimTime(5),
                    end: SimTime(20),
                    kind: EventKind::Compute,
                },
            ],
            telemetry_interval: None,
            metric_points: Vec::new(),
            spec_commits: 0,
            spec_rollbacks: 0,
        }
    }

    #[test]
    fn telemetry_fields_are_digest_excluded() {
        // A telemetry-on capture must digest (and compare) identically to
        // a telemetry-off capture: the digest hashes capture fields
        // explicitly, and telemetry is deliberately not one of them.
        let mut on = cap();
        on.telemetry_interval = Some(1_000);
        on.metric_points.push(hpcbd_simnet::MetricPoint {
            time: SimTime(3),
            pid: Pid(0),
            seq: 0,
            name: "x".into(),
            labels: "".into(),
            op: hpcbd_simnet::MetricOp::CounterAdd(1),
        });
        on.spec_commits = 7;
        on.spec_rollbacks = 2;
        assert_eq!(capture_digest(&[cap()]), capture_digest(&[on.clone()]));
        assert!(compare_runs(&[cap()], &[on]).is_none());
    }

    #[test]
    fn identical_captures_do_not_diverge() {
        assert!(compare_runs(&[cap()], &[cap()]).is_none());
        assert_eq!(capture_digest(&[cap()]), capture_digest(&[cap()]));
    }

    #[test]
    fn event_mismatch_reports_index_and_order_key() {
        let a = cap();
        let mut b = cap();
        b.events[1].end = SimTime(21);
        let d = compare_runs(&[a], &[b]).unwrap();
        assert_eq!(d.field, "events");
        assert_eq!(d.event_index, Some(1));
        assert_eq!(d.order_key, Some((5, 1)));
        assert_eq!(d.pids, vec![1]);
        assert!(d.render().contains("event index: 1"));
        assert_ne!(capture_digest(&[cap()]), {
            let mut b = cap();
            b.events[1].end = SimTime(21);
            capture_digest(&[b])
        });
    }

    #[test]
    fn extra_event_diverges_at_the_shorter_prefix_end() {
        let a = cap();
        let mut b = cap();
        b.events.push(TraceEvent {
            pid: Pid(0),
            start: SimTime(20),
            end: SimTime(22),
            kind: EventKind::Compute,
        });
        let d = compare_runs(&[a], &[b]).unwrap();
        assert_eq!(d.event_index, Some(2));
        assert_eq!(d.order_key, Some((20, 0)));
    }

    #[test]
    fn capture_count_mismatch_is_its_own_field() {
        let d = compare_runs(&[cap()], &[cap(), cap()]).unwrap();
        assert_eq!(d.field, "capture_count");
    }

    #[test]
    fn scalar_mismatch_beats_event_scan() {
        let a = cap();
        let mut b = cap();
        b.dropped_msgs = 3;
        b.events[0].end = SimTime(6);
        let d = compare_runs(&[a], &[b]).unwrap();
        assert_eq!(d.field, "dropped_msgs");
    }
}
