//! Seeded fault-campaign explorer: adversarial robustness testing.
//!
//! The schedule explorer ([`crate::explore`]) asks "does every *legal
//! schedule* reproduce the oracle?"; this module asks the companion
//! robustness question: "does every *adversarial fault plan* leave the
//! runtime either digest-equal to the fault-free oracle or terminated
//! with a structured abort?" Anything else — a silent corruption, a
//! non-structured panic, a simulated deadlock — is a **violation**,
//! and violations are shrunk (greedy delta debugging over
//! [`FaultPlan::atoms`]) to a minimal fault plan before being
//! reported.
//!
//! Campaigns are generated from a seed, so a CI failure names
//! `(kind, seed)` and anyone can replay it. The five kinds target the
//! recovery paths that historically break:
//!
//! * [`CampaignKind::CrashStorm`] — several crashes on distinct nodes
//!   at scattered times.
//! * [`CampaignKind::Correlated`] — a multi-node failure at one
//!   instant (a rack/PDU loss).
//! * [`CampaignKind::StragglerBurst`] — overlapping slow-node
//!   intervals (detection paths must not fire on mere slowness).
//! * [`CampaignKind::PartitionDrop`] — a healed link partition plus a
//!   message-drop rate (retransmitted late, never lost).
//! * [`CampaignKind::DrainCrash`] — a crash aimed *inside* an
//!   asynchronous checkpoint drain window measured off an oracle run:
//!   the case that distinguishes a correct restart (fall back to the
//!   last drained checkpoint) from the classic watermark-confusion
//!   bug.

use std::any::Any;
use std::panic::AssertUnwindSafe;

use hpcbd_simnet::{FaultPlan, NodeId, SimTime, StructuredAbort};

/// The adversarial shapes the generator knows how to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// Several crashes on distinct nodes at scattered times.
    CrashStorm,
    /// Simultaneous crashes of consecutive nodes (correlated failure).
    Correlated,
    /// Overlapping straggler intervals on several nodes.
    StragglerBurst,
    /// A healed link partition combined with a message-drop rate.
    PartitionDrop,
    /// A crash timed inside an asynchronous checkpoint drain window.
    DrainCrash,
}

impl CampaignKind {
    /// All kinds, in generation rotation order.
    pub const ALL: [CampaignKind; 5] = [
        CampaignKind::CrashStorm,
        CampaignKind::Correlated,
        CampaignKind::StragglerBurst,
        CampaignKind::PartitionDrop,
        CampaignKind::DrainCrash,
    ];
}

impl std::fmt::Display for CampaignKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CampaignKind::CrashStorm => "crash-storm",
            CampaignKind::Correlated => "correlated",
            CampaignKind::StragglerBurst => "straggler-burst",
            CampaignKind::PartitionDrop => "partition-drop",
            CampaignKind::DrainCrash => "drain-crash",
        };
        f.write_str(s)
    }
}

/// What the generator is allowed to aim at: the workload's cluster
/// shape, its fault-free horizon, and (for [`CampaignKind::DrainCrash`])
/// the drain windows measured off an oracle run.
#[derive(Debug, Clone)]
pub struct CampaignSpace {
    /// Nodes in the cluster under test.
    pub nodes: u32,
    /// Fault-free makespan of the workload; fault times are sampled
    /// inside `[horizon/10, horizon]` so they land mid-run.
    pub horizon: SimTime,
    /// Nodes the generator must never crash (e.g. node 0 when it hosts
    /// a Spark driver or Hadoop jobtracker — a real SPOF, but crashing
    /// it is refused by those runtimes' builders).
    pub protected: Vec<NodeId>,
    /// `(issue, done)` drain windows from an oracle run of the async
    /// checkpointing workload; empty when the workload has none (the
    /// generator then substitutes a mid-horizon crash).
    pub drain_windows: Vec<(SimTime, SimTime)>,
    /// Upper bound on crashes per campaign (also bounded by the number
    /// of unprotected nodes).
    pub max_crashes: u32,
}

impl CampaignSpace {
    /// A space over `nodes` nodes and a fault-free `horizon`.
    pub fn new(nodes: u32, horizon: SimTime) -> CampaignSpace {
        assert!(nodes >= 2, "campaigns need at least two nodes");
        assert!(horizon.nanos() > 0, "horizon must be positive");
        CampaignSpace {
            nodes,
            horizon,
            protected: Vec::new(),
            drain_windows: Vec::new(),
            max_crashes: 2,
        }
    }

    /// Forbid crashing `node` (builder style).
    pub fn protect(mut self, node: NodeId) -> CampaignSpace {
        self.protected.push(node);
        self
    }

    /// Provide oracle drain windows for [`CampaignKind::DrainCrash`].
    pub fn with_drain_windows(mut self, windows: Vec<(SimTime, SimTime)>) -> CampaignSpace {
        self.drain_windows = windows;
        self
    }

    fn crashable(&self) -> Vec<NodeId> {
        (0..self.nodes)
            .map(NodeId)
            .filter(|n| !self.protected.contains(n))
            .collect()
    }
}

/// One generated campaign: a kind, the seed that built it, and the
/// fault plan to install.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Which adversarial shape this plan instantiates.
    pub kind: CampaignKind,
    /// Seed that generated the plan (replays the campaign exactly).
    pub seed: u64,
    /// The generated fault plan.
    pub plan: FaultPlan,
}

/// splitmix64 — the standard tiny deterministic PRNG; good enough for
/// sampling fault times and more than portable enough for CI replay.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next() % n
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo).max(1))
    }
}

/// Generate `count` campaigns over `space`, rotating through the kinds
/// (skipping [`CampaignKind::DrainCrash`] when the space has no drain
/// windows). Deterministic in `(space, seed, count)`.
pub fn generate_campaigns(space: &CampaignSpace, seed: u64, count: usize) -> Vec<Campaign> {
    let kinds: Vec<CampaignKind> = CampaignKind::ALL
        .into_iter()
        .filter(|k| *k != CampaignKind::DrainCrash || !space.drain_windows.is_empty())
        .collect();
    (0..count)
        .map(|i| {
            let kind = kinds[i % kinds.len()];
            let campaign_seed = seed.wrapping_add(i as u64);
            Campaign {
                kind,
                seed: campaign_seed,
                plan: generate_plan(space, kind, campaign_seed),
            }
        })
        .collect()
}

/// Build the fault plan for one `(kind, seed)` point of `space`.
pub fn generate_plan(space: &CampaignSpace, kind: CampaignKind, seed: u64) -> FaultPlan {
    let mut rng = Rng(seed ^ 0xc0ff_ee00_dead_beef);
    let lo = space.horizon.nanos() / 10;
    let hi = space.horizon.nanos().max(lo + 2);
    let crashable = space.crashable();
    let mut plan = FaultPlan::new(seed);
    match kind {
        CampaignKind::CrashStorm => {
            let k = rng.range(1, u64::from(space.max_crashes) + 1) as usize;
            let mut nodes = crashable.clone();
            for i in 0..k.min(nodes.len()) {
                let pick = i + rng.below((nodes.len() - i) as u64) as usize;
                nodes.swap(i, pick);
                plan = plan.crash_node(nodes[i], SimTime(rng.range(lo, hi)));
            }
        }
        CampaignKind::Correlated => {
            // One instant takes out a block of consecutive nodes — the
            // correlated rack/PDU failure mode.
            let at = SimTime(rng.range(lo, hi));
            let k = (rng.range(2, u64::from(space.max_crashes).max(2) + 1) as usize)
                .min(crashable.len());
            let start = rng.below((crashable.len() - k + 1) as u64) as usize;
            for n in &crashable[start..start + k] {
                plan = plan.crash_node(*n, at);
            }
        }
        CampaignKind::StragglerBurst => {
            let bursts = rng.range(2, 4);
            for _ in 0..bursts {
                let node = NodeId(rng.below(u64::from(space.nodes)) as u32);
                let from = rng.range(lo, hi - 1);
                let until = rng.range(from + 1, hi);
                let factor = 2.0 + rng.below(30) as f64;
                plan = plan.slow_node(node, SimTime(from), SimTime(until), factor);
            }
        }
        CampaignKind::PartitionDrop => {
            let a = NodeId(rng.below(u64::from(space.nodes)) as u32);
            let b = NodeId(
                ((a.0 as u64 + 1 + rng.below(u64::from(space.nodes) - 1)) % u64::from(space.nodes))
                    as u32,
            );
            let from = rng.range(lo, hi - 1);
            let until = rng.range(from + 1, hi);
            plan = plan
                .partition_link(a, b, SimTime(from), SimTime(until))
                .drop_messages(rng.range(10_000, 200_000) as u32);
        }
        CampaignKind::DrainCrash => {
            // Aim inside a drain window so the in-flight snapshot is
            // torn; restart must fall back to the last drained one.
            let at = if space.drain_windows.is_empty() {
                SimTime(rng.range(lo, hi))
            } else {
                let (issue, done) =
                    space.drain_windows[rng.below(space.drain_windows.len() as u64) as usize];
                let span = done.nanos().saturating_sub(issue.nanos()).max(2);
                SimTime(issue.nanos() + rng.range(1, span))
            };
            let node = crashable[rng.below(crashable.len() as u64) as usize];
            plan = plan.crash_node(node, at);
        }
    }
    plan
}

/// How one campaign run ended.
#[derive(Debug, Clone)]
pub enum CampaignOutcome {
    /// The run produced a result digest-equal to the fault-free oracle.
    OracleEqual,
    /// The runtime gave up loudly with a [`StructuredAbort`] — an
    /// acceptable terminal state (e.g. `MPI_Abort`, a Spark job
    /// failure after the retry budget).
    Abort(StructuredAbort),
    /// Anything else: silent corruption, a non-structured panic, or a
    /// simulated deadlock. These get shrunk and reported.
    Violation {
        /// Human-readable description of what went wrong.
        detail: String,
    },
}

impl CampaignOutcome {
    /// Whether this outcome violates the robustness contract.
    pub fn is_violation(&self) -> bool {
        matches!(self, CampaignOutcome::Violation { .. })
    }
}

/// Run `run` and classify its ending against `oracle`: digest-equal,
/// structured abort, or violation. Panics that are not
/// [`StructuredAbort`]s (including the engine's deadlock aborts) are
/// violations — the runtime broke instead of giving up loudly.
pub fn classify_run<R, F>(oracle: &R, run: F) -> CampaignOutcome
where
    R: PartialEq + std::fmt::Debug,
    F: FnOnce() -> R,
{
    match std::panic::catch_unwind(AssertUnwindSafe(run)) {
        Ok(ref r) if r == oracle => CampaignOutcome::OracleEqual,
        Ok(r) => CampaignOutcome::Violation {
            detail: format!("silent corruption: got {r:?}, oracle {oracle:?}"),
        },
        Err(payload) => match StructuredAbort::from_panic(payload.as_ref() as &(dyn Any + Send)) {
            Some(sa) => CampaignOutcome::Abort(sa),
            None => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                CampaignOutcome::Violation {
                    detail: format!("runtime panic: {msg}"),
                }
            }
        },
    }
}

/// Greedy delta debugging over [`FaultPlan::atoms`]: repeatedly try
/// dropping each atom, keeping any removal under which
/// `still_violates` holds, until no single atom can be removed. The
/// result is a 1-minimal violating plan — usually one or two atoms —
/// small enough to paste into a regression test.
pub fn shrink_plan<F>(plan: &FaultPlan, mut still_violates: F) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> bool,
{
    let mut atoms = plan.atoms();
    let mut progress = true;
    while progress && atoms.len() > 1 {
        progress = false;
        let mut i = 0;
        while i < atoms.len() && atoms.len() > 1 {
            let mut candidate = atoms.clone();
            candidate.remove(i);
            let smaller = plan.from_atoms(&candidate);
            if still_violates(&smaller) {
                atoms = candidate;
                progress = true;
            } else {
                i += 1;
            }
        }
    }
    plan.from_atoms(&atoms)
}

/// Aggregate tallies of a campaign sweep (one runtime, one execution
/// mode).
#[derive(Debug, Clone, Default)]
pub struct CampaignTally {
    /// Runs digest-equal to the oracle.
    pub oracle_equal: usize,
    /// Runs ending in a structured abort.
    pub aborts: usize,
    /// Violations, with the campaign that triggered each and its
    /// shrunk minimal plan description.
    pub violations: Vec<(CampaignKind, u64, String)>,
}

impl CampaignTally {
    /// Total classified runs.
    pub fn total(&self) -> usize {
        self.oracle_equal + self.aborts + self.violations.len()
    }

    /// Record one classified outcome (violations carry the shrunk
    /// plan's description).
    pub fn record(&mut self, campaign: &Campaign, outcome: &CampaignOutcome, shrunk: Option<&str>) {
        match outcome {
            CampaignOutcome::OracleEqual => self.oracle_equal += 1,
            CampaignOutcome::Abort(_) => self.aborts += 1,
            CampaignOutcome::Violation { detail } => self.violations.push((
                campaign.kind,
                campaign.seed,
                match shrunk {
                    Some(s) => format!("{detail}\nshrunk minimal plan:\n{s}"),
                    None => detail.clone(),
                },
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcbd_simnet::FaultAtom;

    fn space() -> CampaignSpace {
        CampaignSpace::new(4, SimTime(1_000_000_000))
            .protect(NodeId(0))
            .with_drain_windows(vec![
                (SimTime(100_000_000), SimTime(180_000_000)),
                (SimTime(400_000_000), SimTime(490_000_000)),
            ])
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let a = generate_campaigns(&space(), 42, 20);
        let b = generate_campaigns(&space(), 42, 20);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.plan.atoms(), y.plan.atoms());
            assert!(!x.plan.atoms().is_empty(), "campaigns must inject faults");
            // Protected nodes are never crashed.
            for atom in x.plan.atoms() {
                if let FaultAtom::Crash { node, .. } = atom {
                    assert_ne!(node, NodeId(0), "node 0 is protected");
                }
            }
        }
        // All kinds appear in rotation.
        for kind in CampaignKind::ALL {
            assert!(a.iter().any(|c| c.kind == kind), "missing {kind}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_campaigns(&space(), 1, 5);
        let b = generate_campaigns(&space(), 2, 5);
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.plan.atoms() != y.plan.atoms()),
            "seeds must matter"
        );
    }

    #[test]
    fn drain_crash_campaigns_land_inside_windows() {
        let sp = space();
        let campaigns = generate_campaigns(&sp, 7, 25);
        let mut seen = 0;
        for c in campaigns {
            if c.kind != CampaignKind::DrainCrash {
                continue;
            }
            seen += 1;
            for atom in c.plan.atoms() {
                if let FaultAtom::Crash { at, .. } = atom {
                    assert!(
                        sp.drain_windows
                            .iter()
                            .any(|(issue, done)| *issue < at && at < *done),
                        "drain-crash at {at} outside every window"
                    );
                }
            }
        }
        assert!(seen >= 4, "rotation must produce drain-crash campaigns");
    }

    #[test]
    fn classify_distinguishes_the_three_endings() {
        let oracle = 10u32;
        assert!(matches!(
            classify_run(&oracle, || 10u32),
            CampaignOutcome::OracleEqual
        ));
        assert!(classify_run(&oracle, || 11u32).is_violation());
        match classify_run(&oracle, || -> u32 {
            StructuredAbort::raise("mpi", "MPI_Abort: test")
        }) {
            CampaignOutcome::Abort(sa) => assert_eq!(sa.runtime, "mpi"),
            other => panic!("expected abort, got {other:?}"),
        }
        match classify_run(&oracle, || -> u32 { panic!("index out of bounds") }) {
            CampaignOutcome::Violation { detail } => {
                assert!(detail.contains("index out of bounds"), "{detail}")
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn shrinker_reaches_the_minimal_plan() {
        // Violation iff the plan crashes node 2 — everything else is
        // noise the shrinker must strip.
        let plan = FaultPlan::new(9)
            .crash_node(NodeId(1), SimTime(10_000))
            .crash_node(NodeId(2), SimTime(20_000))
            .crash_node(NodeId(3), SimTime(30_000))
            .slow_node(NodeId(1), SimTime(0), SimTime(50_000), 4.0)
            .drop_messages(5_000);
        let violates = |p: &FaultPlan| {
            p.atoms()
                .iter()
                .any(|a| matches!(a, FaultAtom::Crash { node, .. } if *node == NodeId(2)))
        };
        assert!(violates(&plan));
        let minimal = shrink_plan(&plan, violates);
        assert_eq!(
            minimal.atoms().len(),
            1,
            "1-minimal: {}",
            minimal.describe()
        );
        assert!(violates(&minimal));
        assert_eq!(minimal.seed(), plan.seed(), "seed survives shrinking");
    }

    #[test]
    fn straggler_and_partition_intervals_are_nonempty() {
        let sp = CampaignSpace::new(3, SimTime(500_000));
        for seed in 0..50 {
            // Builders panic on zero-duration intervals; constructing
            // every kind across many seeds proves the generator
            // respects the validation envelope.
            for kind in CampaignKind::ALL {
                if kind == CampaignKind::DrainCrash {
                    continue;
                }
                let _ = generate_plan(&sp, kind, seed);
            }
        }
    }
}
